package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"distmsm/internal/gpusim"
)

// TestDevicesValidation pins the error surface of Options.Devices: out
// of range, duplicated, and combined with the full-cluster SplitNDim
// ablation are all rejected with gpusim.ErrBadDevice.
func TestDevicesValidation(t *testing.T) {
	ctx := context.Background()
	c := mustCurve(t, "BN254")
	sys := cluster(t, 4)
	points := c.SamplePoints(32, 1)
	scalars := c.SampleScalars(32, 2)

	for _, bad := range [][]int{{-1}, {4}, {0, 4}, {0, 0}, {1, 2, 1}} {
		if _, err := RunContext(ctx, c, sys, points, scalars, Options{Devices: bad}); !errors.Is(err, gpusim.ErrBadDevice) {
			t.Errorf("Devices=%v: want gpusim.ErrBadDevice, got %v", bad, err)
		}
	}
	if _, err := RunContext(ctx, c, sys, points, scalars,
		Options{Devices: []int{0, 1}, SplitNDim: true}); !errors.Is(err, gpusim.ErrBadDevice) {
		t.Errorf("Devices+SplitNDim: want gpusim.ErrBadDevice, got %v", err)
	}
}

// TestDevicesSubPoolParity is the arbitration check of the phase-DAG
// prover: four RunContexts on disjoint GPU sub-pools of one shared
// cluster, executing concurrently, each stay inside their pool and each
// produce the bit-identical full-cluster result — on both curves.
func TestDevicesSubPoolParity(t *testing.T) {
	ctx := context.Background()
	for _, curveName := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, curveName)
		points := c.SamplePoints(96, 11)
		scalars := c.SampleScalars(96, 12)
		sys := cluster(t, 8)

		ref, err := RunContext(ctx, c, sys, points, scalars, Options{Engine: EngineSerial})
		if err != nil {
			t.Fatalf("%s: serial reference: %v", curveName, err)
		}
		want := c.ToAffine(ref.Point).String()

		pools := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
		results := make([]*Result, len(pools))
		errs := make([]error, len(pools))
		var wg sync.WaitGroup
		for i, pool := range pools {
			wg.Add(1)
			go func(i int, pool []int) {
				defer wg.Done()
				results[i], errs[i] = RunContext(ctx, c, sys, points, scalars,
					Options{Engine: EngineConcurrent, Devices: pool})
			}(i, pool)
		}
		wg.Wait()

		for i, pool := range pools {
			if errs[i] != nil {
				t.Fatalf("%s pool %v: %v", curveName, pool, errs[i])
			}
			if got := c.ToAffine(results[i].Point).String(); got != want {
				t.Fatalf("%s pool %v: result differs from full-cluster serial reference", curveName, pool)
			}
			if !reflect.DeepEqual(results[i].Plan.Devices, pool) {
				t.Fatalf("%s pool %v: plan recorded pool %v", curveName, pool, results[i].Plan.Devices)
			}
			in := map[int]bool{}
			for _, g := range pool {
				in[g] = true
			}
			for _, a := range results[i].Plan.Assignments {
				if !in[a.GPU] {
					t.Fatalf("%s pool %v: assignment escaped to GPU %d", curveName, pool, a.GPU)
				}
			}
		}
	}
}

// TestDevicesSubPoolCost: the modeled cost amortises over the sub-pool,
// not the cluster — a 2-GPU sub-pool of an 8-GPU cluster must price like
// 2 GPUs (strictly more GPU time than the full pool at the same plan).
func TestDevicesSubPoolCost(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 8)
	// Pin the reduce on the GPUs: with the CPU reduce both totals are
	// dominated by the same host-side term and the pools can't differ.
	sub, err := BuildPlan(c, sys, 1<<16, Options{WindowSize: 12, ReduceOnGPU: true, Devices: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildPlan(c, sys, 1<<16, Options{WindowSize: 12, ReduceOnGPU: true})
	if err != nil {
		t.Fatal(err)
	}
	if subCost, fullCost := sub.EstimateCost().Total(), full.EstimateCost().Total(); subCost <= fullCost {
		t.Fatalf("2-GPU sub-pool modeled at %.4g s, full 8-GPU pool at %.4g s — sub-pool should cost more", subCost, fullCost)
	}
}
