package cluster_test

// The cluster chaos suite: an in-process three-node cluster with real
// proving services behind each node, a deterministic node-fault
// injector (crash, partition, slow-node, corrupted-response), and hard
// invariants held across fault seeds — every job completes via
// failover, every returned proof is byte-identical to the fault-free
// single-node reference, and nothing leaks. This is the node-level
// mirror of internal/service's GPU chaos test, and the external test
// package is deliberate: internal/cluster must not import
// internal/service (the service imports cluster), but its tests may.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"distmsm/internal/cluster"
	"distmsm/internal/gpusim"
	"distmsm/internal/service"
)

// newProvingService builds a running proving service with the synthetic
// circuit registered — one cluster node's backend, or the reference.
func newProvingService(t testing.TB, gpus, constraints int) *service.Service {
	t.Helper()
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.New(service.Config{Cluster: cl, WindowSize: 8, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterSynthetic(context.Background(), "synthetic", constraints); err != nil {
		t.Fatal(err)
	}
	return svc
}

func clusterLeakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if g := runtime.NumGoroutine(); g <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func clusterShutdown(t *testing.T, svc *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// svcWorker adapts an in-process proving service to WorkerClient, so
// the chaos cluster runs real proving on every node without HTTP.
type svcWorker struct{ svc *service.Service }

func (w svcWorker) Dispatch(ctx context.Context, req cluster.DispatchRequest) ([]byte, error) {
	return w.svc.ProveLocal(ctx, req.Circuit, req.Seed)
}

// TestClusterChaos is the acceptance test of the failover machinery:
// for each fault seed, 10 jobs run against a three-node cluster whose
// dispatches are hit with injected crashes, partitions, slow nodes and
// corrupted responses. Every job must complete, every proof must be
// byte-identical to the fault-free single-node reference proof, and
// every goroutine must drain.
func TestClusterChaos(t *testing.T) {
	for _, faultSeed := range []int64{3, 11, 29} {
		t.Run(fmt.Sprintf("seed=%d", faultSeed), func(t *testing.T) {
			runClusterChaos(t, faultSeed)
		})
	}
}

func runClusterChaos(t *testing.T, faultSeed int64) {
	check := clusterLeakCheck(t)
	const (
		nodes       = 3
		jobs        = 10
		constraints = 64
	)
	ref := newProvingService(t, 2, constraints)
	workers := make(map[string]cluster.WorkerClient, nodes)
	svcs := make([]*service.Service, nodes)
	ids := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		svcs[i] = newProvingService(t, 2, constraints)
		ids[i] = fmt.Sprintf("w%d", i)
		workers[ids[i]] = svcWorker{svc: svcs[i]}
	}

	inj, err := cluster.NewNodeInjector(cluster.NodeFaultConfig{
		Seed:      faultSeed,
		Crash:     0.08,
		Partition: 0.12,
		Slow:      0.10,
		Corrupt:   0.10,
		SlowDelay: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generous lease and per-attempt timeout: under -race everything runs
	// an order of magnitude slower, and a starved heartbeat pump must not
	// read as a dead node.
	lease := time.Second
	coord := cluster.NewCoordinator(cluster.Config{
		Local:          ref,
		Lease:          lease,
		SweepInterval:  200 * time.Millisecond,
		Breaker:        cluster.BreakerConfig{FailThreshold: 2, Cooldown: 150 * time.Millisecond},
		HedgeMin:       80 * time.Millisecond,
		MaxAttempts:    6,
		DefaultTimeout: 60 * time.Second,
		// A partitioned dispatch must fail the attempt, not ride the whole
		// job deadline: the per-attempt timeout is what keeps a partition
		// on a still-heartbeating node from stalling a job when every
		// hedge candidate is exhausted.
		DispatchTimeout: 15 * time.Second,
		DialWorker:      func(addr string) cluster.WorkerClient { return workers[addr] },
		Faults:          inj,
	})
	for _, id := range ids {
		if _, err := coord.Register(cluster.RegisterRequest{NodeID: id, Addr: id, Circuits: []string{"synthetic"}}); err != nil {
			t.Fatal(err)
		}
	}

	// The heartbeat pump: every live node renews its lease; a node the
	// injector has crashed stops heartbeating — a dead process does not
	// send datagrams — so the lease sweeper marks it lost and its
	// in-flight jobs re-dispatch to the survivors.
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		seqs := make([]uint64, nodes)
		t := time.NewTicker(lease / 5)
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				for i, id := range ids {
					if inj.Crashed(i) {
						continue
					}
					seqs[i]++
					_, _ = coord.Heartbeat(cluster.HeartbeatRequest{NodeID: id, Seq: seqs[i]})
				}
			}
		}
	}()

	// Fault-free reference proofs: the whole pipeline is deterministic in
	// (circuit, seed) — identical setup keys across services, witness and
	// proof randomness derived from the seed — so a remote proof routed
	// through any node, or re-dispatched through three, must come back
	// byte-identical to the local reference.
	refProofs := make([][]byte, jobs)
	for i := 0; i < jobs; i++ {
		p, err := ref.ProveLocal(context.Background(), "synthetic", int64(i+1))
		if err != nil {
			t.Fatalf("reference proof %d: %v", i, err)
		}
		refProofs[i] = p
	}

	proofs := make([][]byte, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proofs[i], errs[i] = coord.Prove(context.Background(), cluster.ProveRequest{Circuit: "synthetic", Seed: int64(i + 1)})
		}(i)
	}
	wg.Wait()
	close(stopHB)
	<-hbDone

	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Errorf("job %d failed despite failover: %v", i+1, errs[i])
			continue
		}
		if !bytes.Equal(proofs[i], refProofs[i]) {
			t.Errorf("job %d proof differs from the fault-free reference", i+1)
		}
	}
	st := coord.Stats()
	t.Logf("seed %d: crashed=%d lost=%d recovered=%d redispatches=%d hedges=%d hedgeWins=%d corrupt=%d localFallbacks=%d trips=%d",
		faultSeed, inj.CrashedCount(), st.LostNodes, st.LostJobsRecovered, st.Redispatches,
		st.Hedges, st.HedgeWins, st.CorruptProofs, st.LocalFallbacks, st.BreakerTrips)
	if st.JobsCompleted != jobs {
		t.Errorf("jobs completed %d, want %d", st.JobsCompleted, jobs)
	}
	// The injector must actually have injected something at these seeds
	// and rates — a chaos test that tests nothing must fail loudly.
	if st.Redispatches == 0 && st.Hedges == 0 && st.CorruptProofs == 0 && inj.CrashedCount() == 0 {
		t.Error("no fault was injected: the chaos configuration is inert")
	}

	coord.Close()
	for _, svc := range svcs {
		clusterShutdown(t, svc)
	}
	clusterShutdown(t, ref)
	check()
}

// TestClusterChaosCrashMidBatch is the named acceptance criterion: one
// of three workers crashes mid-batch (sticky injected crash — its
// heartbeats stop), and every job still terminates with a proof
// byte-identical to the fault-free reference, through lease expiry and
// re-dispatch alone.
func TestClusterChaosCrashMidBatch(t *testing.T) {
	check := clusterLeakCheck(t)
	const (
		nodes       = 3
		jobs        = 8
		constraints = 64
	)
	ref := newProvingService(t, 2, constraints)
	workers := make(map[string]cluster.WorkerClient, nodes)
	svcs := make([]*service.Service, nodes)
	ids := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		svcs[i] = newProvingService(t, 2, constraints)
		ids[i] = fmt.Sprintf("w%d", i)
		workers[ids[i]] = svcWorker{svc: svcs[i]}
	}
	// Only node 0's client is wrapped, with a crash-certain injector: its
	// first dispatch kills it for good (deterministically, whatever the
	// scheduling), the other two nodes stay honest.
	inj, err := cluster.NewNodeInjector(cluster.NodeFaultConfig{Seed: 1, Crash: 1})
	if err != nil {
		t.Fatal(err)
	}
	workers[ids[0]] = inj.WrapClient(0, workers[ids[0]])

	lease := time.Second
	coord := cluster.NewCoordinator(cluster.Config{
		Lease:           lease,
		SweepInterval:   200 * time.Millisecond,
		HedgeMin:        100 * time.Millisecond,
		MaxAttempts:     5,
		DefaultTimeout:  60 * time.Second,
		DispatchTimeout: 15 * time.Second,
		DialWorker:      func(addr string) cluster.WorkerClient { return workers[addr] },
	})
	for _, id := range ids {
		if _, err := coord.Register(cluster.RegisterRequest{NodeID: id, Addr: id}); err != nil {
			t.Fatal(err)
		}
	}
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		seqs := make([]uint64, nodes)
		tick := time.NewTicker(lease / 5)
		defer tick.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-tick.C:
				for i, id := range ids {
					if inj.Crashed(i) {
						continue
					}
					seqs[i]++
					_, _ = coord.Heartbeat(cluster.HeartbeatRequest{NodeID: id, Seq: seqs[i]})
				}
			}
		}
	}()

	proofs := make([][]byte, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proofs[i], errs[i] = coord.Prove(context.Background(), cluster.ProveRequest{Circuit: "synthetic", Seed: int64(i + 1)})
		}(i)
	}
	wg.Wait()
	close(stopHB)
	<-hbDone

	if !inj.Crashed(0) {
		t.Fatal("node 0 never crashed — the batch never touched it")
	}
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Errorf("job %d failed: %v", i+1, errs[i])
			continue
		}
		refProof, err := ref.ProveLocal(context.Background(), "synthetic", int64(i+1))
		if err != nil {
			t.Fatalf("reference proof %d: %v", i, err)
		}
		if !bytes.Equal(proofs[i], refProof) {
			t.Errorf("job %d proof differs from the fault-free single-node reference", i+1)
		}
	}
	st := coord.Stats()
	if st.Redispatches == 0 {
		t.Error("the crash cost no redispatch — failover never ran")
	}
	t.Logf("crash-mid-batch: lost=%d recovered=%d redispatches=%d hedges=%d", st.LostNodes, st.LostJobsRecovered, st.Redispatches, st.Hedges)

	coord.Close()
	for _, svc := range svcs {
		clusterShutdown(t, svc)
	}
	clusterShutdown(t, ref)
	check()
}
