package msm

import (
	"fmt"
	"math/big"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

// GLV implements the Gallant–Lambert–Vanstone endomorphism decomposition
// for j-invariant-0 curves (a = 0, p ≡ 1 mod 3): φ(x, y) = (β·x, y) with
// β a primitive cube root of unity in Fp acts as multiplication by λ, a
// cube root of unity mod r. Every term k·P splits into k₁·P + k₂·φ(P)
// with |k₁|, |k₂| ≈ √r, halving the scalar width — the "signed digits"
// companion trick of the ZPrize implementations (§6).
type GLV struct {
	c      *curve.Curve
	beta   bigint.Nat // β in Fp, Montgomery form
	lambda *big.Int
	// Reduced lattice basis (a1, b1), (a2, b2) with a + b·λ ≡ 0 mod r.
	a1, b1, a2, b2 *big.Int
	// det = a1·b2 − a2·b1 = ±r (the lattice determinant).
	det      *big.Int
	halfBits int
}

// NewGLV builds the decomposition context, or reports that the curve has
// no usable endomorphism (a ≠ 0 or missing cube roots).
func NewGLV(c *curve.Curve) (*GLV, error) {
	if !c.A.IsZero() {
		return nil, fmt.Errorf("msm: GLV needs a j-invariant-0 curve (a = 0), %s has a != 0", c.Name)
	}
	if c.ScalarField == nil {
		return nil, fmt.Errorf("msm: GLV needs a known group order for %s", c.Name)
	}
	if c.GenDerived {
		// The λ-relation only holds on the prime-order subgroup; without
		// a canonical subgroup generator the endomorphism cannot be
		// verified (and callers could not guarantee subgroup inputs).
		return nil, fmt.Errorf("msm: GLV on %s needs a canonical subgroup generator", c.Name)
	}
	r := c.ScalarField.Modulus
	p := c.Fp.Modulus
	lambda, err := cubeRootOfUnity(r)
	if err != nil {
		return nil, fmt.Errorf("msm: no cube root of unity mod r: %w", err)
	}
	betaV, err := cubeRootOfUnity(p)
	if err != nil {
		return nil, fmt.Errorf("msm: no cube root of unity mod p: %w", err)
	}
	g := &GLV{c: c, lambda: lambda}

	// Match β to λ: φ(G) must equal λ·G (otherwise use the other root,
	// β² — the two non-trivial cube roots correspond to λ and λ²).
	adder := c.NewAdder()
	w := (c.ScalarBits + 63) / 64
	want := adder.ScalarMul(&c.Gen, bigint.FromBig(lambda, w))
	for attempt := 0; attempt < 2; attempt++ {
		beta := c.Fp.FromBig(betaV)
		phiG := curve.PointAffine{X: c.Fp.NewElement(), Y: c.Gen.Y.Clone()}
		c.Fp.Mul(phiG.X, c.Gen.X, beta)
		got := c.NewXYZZ()
		c.SetAffine(got, &phiG)
		if c.EqualXYZZ(got, want) {
			g.beta = beta
			break
		}
		betaV.Mul(betaV, betaV).Mod(betaV, p) // try β²
	}
	if g.beta == nil {
		return nil, fmt.Errorf("msm: endomorphism verification failed on %s", c.Name)
	}

	// Lattice basis via the extended Euclidean algorithm on (r, λ):
	// stop at the first remainder below √r.
	g.a1, g.b1, g.a2, g.b2 = latticeBasis(r, lambda)
	g.det = new(big.Int).Mul(g.a1, g.b2)
	g.det.Sub(g.det, new(big.Int).Mul(g.a2, g.b1))
	if new(big.Int).Abs(g.det).Cmp(r) != 0 {
		return nil, fmt.Errorf("msm: GLV lattice determinant != ±r on %s", c.Name)
	}
	g.halfBits = (r.BitLen() + 1) / 2
	return g, nil
}

// cubeRootOfUnity returns a primitive cube root of unity mod m (m prime,
// m ≡ 1 mod 3): ω = (−1 + √−3)/2.
func cubeRootOfUnity(m *big.Int) (*big.Int, error) {
	if new(big.Int).Mod(m, big.NewInt(3)).Int64() != 1 {
		return nil, fmt.Errorf("modulus not 1 mod 3")
	}
	// √−3 mod m via Tonelli–Shanks on big.Int (ModSqrt).
	neg3 := new(big.Int).Sub(m, big.NewInt(3))
	s := new(big.Int).ModSqrt(neg3, m)
	if s == nil {
		return nil, fmt.Errorf("-3 is not a square")
	}
	inv2 := new(big.Int).ModInverse(big.NewInt(2), m)
	w := new(big.Int).Sub(s, big.NewInt(1))
	w.Mul(w, inv2).Mod(w, m)
	// Verify order 3.
	w3 := new(big.Int).Exp(w, big.NewInt(3), m)
	if w3.Cmp(big.NewInt(1)) != 0 || w.Cmp(big.NewInt(1)) == 0 {
		return nil, fmt.Errorf("candidate is not a primitive cube root")
	}
	return w, nil
}

// latticeBasis runs the extended Euclidean algorithm on (r, λ) and
// returns two short vectors (a1, b1), (a2, b2) of the lattice
// {(a, b) : a + b·λ ≡ 0 mod r}.
func latticeBasis(r, lambda *big.Int) (a1, b1, a2, b2 *big.Int) {
	sqrtR := new(big.Int).Sqrt(r)
	// Remainder sequence r_i with coefficients t_i: r_i = s_i·r + t_i·λ.
	r0, r1 := new(big.Int).Set(r), new(big.Int).Set(lambda)
	t0, t1 := big.NewInt(0), big.NewInt(1)
	var prevR, prevT *big.Int
	for r1.Sign() != 0 {
		q := new(big.Int).Div(r0, r1)
		r2 := new(big.Int).Sub(r0, new(big.Int).Mul(q, r1))
		t2 := new(big.Int).Sub(t0, new(big.Int).Mul(q, t1))
		if r1.Cmp(sqrtR) < 0 {
			// r1 is the first remainder below √r: basis vectors are
			// (r1, −t1) and the shorter of (r0, −t0), (r2, −t2).
			a1 = new(big.Int).Set(r1)
			b1 = new(big.Int).Neg(t1)
			n0 := new(big.Int).Add(new(big.Int).Mul(r0, r0), new(big.Int).Mul(t0, t0))
			n2 := new(big.Int).Add(new(big.Int).Mul(r2, r2), new(big.Int).Mul(t2, t2))
			if n0.Cmp(n2) <= 0 {
				a2 = new(big.Int).Set(r0)
				b2 = new(big.Int).Neg(t0)
			} else {
				a2 = new(big.Int).Set(r2)
				b2 = new(big.Int).Neg(t2)
			}
			return a1, b1, a2, b2
		}
		prevR, prevT = r0, t0
		r0, t0 = r1, t1
		r1, t1 = r2, t2
	}
	_ = prevR
	_ = prevT
	// Degenerate (should not happen for prime r): identity-ish basis.
	return new(big.Int).Set(r), big.NewInt(0), new(big.Int).Set(lambda), big.NewInt(-1)
}

// Decompose splits k into (k1, k2) with k ≡ k1 + k2·λ (mod r) and both
// parts roughly √r-sized (possibly negative).
func (g *GLV) Decompose(k *big.Int) (k1, k2 *big.Int) {
	// (c1, c2) = round(k·(b2, −b1)/det); (k1, k2) = (k,0) − c1·v1 − c2·v2.
	c1 := roundedDiv(new(big.Int).Mul(g.b2, k), g.det)
	c2 := roundedDiv(new(big.Int).Neg(new(big.Int).Mul(g.b1, k)), g.det)
	k1 = new(big.Int).Sub(k, new(big.Int).Mul(c1, g.a1))
	k1.Sub(k1, new(big.Int).Mul(c2, g.a2))
	k2 = new(big.Int).Neg(new(big.Int).Mul(c1, g.b1))
	k2.Sub(k2, new(big.Int).Mul(c2, g.b2))
	return k1, k2
}

// roundedDiv returns round(a/b) for b != 0.
func roundedDiv(a, b *big.Int) *big.Int {
	if b.Sign() < 0 {
		a = new(big.Int).Neg(a)
		b = new(big.Int).Neg(b)
	}
	two := big.NewInt(2)
	num := new(big.Int).Mul(a, two)
	num.Add(num, b)
	num.Div(num, new(big.Int).Mul(b, two))
	return num
}

// HalfBits returns the bit width of the decomposition halves, ⌈log₂√r⌉.
// Callers recoding the halves should budget HalfBits()+4 bits: the
// rounded lattice reduction can overshoot √r by a small factor.
func (g *GLV) HalfBits() int { return g.halfBits }

// Curve returns the curve the decomposition was built for.
func (g *GLV) Curve() *curve.Curve { return g.c }

// SplitPoints returns the 2N-point GLV base vector
// [P_0, …, P_{n−1}, φ(P_0), …, φ(P_{n−1})]: the fixed, scalar-independent
// half of the endomorphism split (the signs of the decomposed scalars are
// per-MSM and handled by the caller). All points must lie in the
// prime-order subgroup.
func (g *GLV) SplitPoints(points []curve.PointAffine) []curve.PointAffine {
	out := make([]curve.PointAffine, 2*len(points))
	copy(out, points)
	for i := range points {
		out[len(points)+i] = g.Phi(&points[i])
	}
	return out
}

// DecomposeNat splits the scalar k (interpreted mod r) into magnitude and
// sign halves: k ≡ ±|k1| ± |k2|·λ (mod r), with both magnitudes at most
// HalfBits()+4 bits wide. The returned Nats are sized for that width, so
// they recode directly against a HalfBits()+4-bit scalar field.
func (g *GLV) DecomposeNat(k bigint.Nat) (k1 bigint.Nat, neg1 bool, k2 bigint.Nat, neg2 bool, err error) {
	b := k.ToBig()
	b.Mod(b, g.c.ScalarField.Modulus)
	b1, b2 := g.Decompose(b)
	if b1.Sign() < 0 {
		neg1 = true
		b1.Neg(b1)
	}
	if b2.Sign() < 0 {
		neg2 = true
		b2.Neg(b2)
	}
	bits := g.halfBits + 4
	if b1.BitLen() > bits || b2.BitLen() > bits {
		return nil, false, nil, false, fmt.Errorf("msm: GLV half-scalar too wide (%d/%d bits)", b1.BitLen(), b2.BitLen())
	}
	w := (bits + 63) / 64
	return bigint.FromBig(b1, w), neg1, bigint.FromBig(b2, w), neg2, nil
}

// Phi applies the endomorphism to an affine point: (x, y) → (β·x, y).
func (g *GLV) Phi(p *curve.PointAffine) curve.PointAffine {
	if p.Inf {
		return curve.PointAffine{Inf: true}
	}
	out := curve.PointAffine{X: g.c.Fp.NewElement(), Y: p.Y.Clone()}
	g.c.Fp.Mul(out.X, p.X, g.beta)
	return out
}

// MSM computes Σ k_i·P_i with the endomorphism split: 2N points with
// half-width scalars, then the standard Pippenger. All points must lie
// in the prime-order subgroup (the λ-relation does not hold elsewhere).
func (g *GLV) MSM(points []curve.PointAffine, scalars []bigint.Nat, cfg Config) (*curve.PointXYZZ, error) {
	if len(points) != len(scalars) {
		return nil, fmt.Errorf("msm: %d points but %d scalars", len(points), len(scalars))
	}
	c := g.c
	fr := c.ScalarField
	halfWidth := (g.halfBits + 4 + 63) / 64
	splitPts := make([]curve.PointAffine, 0, 2*len(points))
	splitKs := make([]bigint.Nat, 0, 2*len(points))
	for i := range points {
		k := scalars[i].ToBig()
		k.Mod(k, fr.Modulus)
		k1, k2 := g.Decompose(k)
		for half, ki := range []*big.Int{k1, k2} {
			var pt curve.PointAffine
			if half == 1 {
				pt = g.Phi(&points[i])
			} else {
				pt = curve.PointAffine{X: points[i].X, Y: points[i].Y, Inf: points[i].Inf}
			}
			if ki.Sign() < 0 {
				ki = new(big.Int).Neg(ki)
				// Negate into a fresh element; pt may share storage with
				// the caller's point.
				negY := c.Fp.NewElement()
				if !pt.Inf {
					c.Fp.Neg(negY, pt.Y)
					pt.Y = negY
				}
			}
			if ki.BitLen() > g.halfBits+4 {
				return nil, fmt.Errorf("msm: GLV half-scalar too wide (%d bits)", ki.BitLen())
			}
			splitPts = append(splitPts, pt)
			splitKs = append(splitKs, bigint.FromBig(ki, halfWidth))
		}
	}
	// Run Pippenger with the reduced scalar width.
	halfCurve := *c
	halfCurve.ScalarBits = g.halfBits + 4
	return MSM(&halfCurve, splitPts, splitKs, cfg)
}
