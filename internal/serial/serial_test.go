package serial

import (
	"bytes"
	"math/rand"
	"testing"

	"distmsm/internal/curve"
)

func mustCurve(t testing.TB, name string) *curve.Curve {
	t.Helper()
	c, err := curve.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestElementRoundTrip(t *testing.T) {
	for _, name := range curve.Names() {
		c := mustCurve(t, name)
		rnd := rand.New(rand.NewSource(1))
		for i := 0; i < 20; i++ {
			e := c.Fp.Rand(rnd)
			b := MarshalElement(c.Fp, e)
			if len(b) != ElementSize(c.Fp) {
				t.Fatalf("%s: size %d", name, len(b))
			}
			back, err := UnmarshalElement(c.Fp, b)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(e) {
				t.Fatalf("%s: element round trip failed", name)
			}
		}
		// wrong length / non-canonical rejected
		if _, err := UnmarshalElement(c.Fp, []byte{1, 2, 3}); err == nil {
			t.Fatal("short element accepted")
		}
		full := bytes.Repeat([]byte{0xff}, ElementSize(c.Fp))
		if _, err := UnmarshalElement(c.Fp, full); err == nil && name != "MNT4753" {
			t.Fatalf("%s: non-canonical element accepted", name)
		}
	}
}

func TestScalarRoundTrip(t *testing.T) {
	c := mustCurve(t, "BN254")
	for _, k := range c.SampleScalars(20, 2) {
		b := MarshalScalar(k, c.ScalarBits)
		back, err := UnmarshalScalar(b, c.ScalarBits)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(k) {
			t.Fatal("scalar round trip failed")
		}
	}
	if _, err := UnmarshalScalar([]byte{1}, 254); err == nil {
		t.Fatal("short scalar accepted")
	}
}

func TestPointRoundTrip(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381", "MNT4753"} {
		c := mustCurve(t, name)
		pts := c.SamplePoints(10, 3)
		pts = append(pts, curve.PointAffine{Inf: true})
		for _, compressed := range []bool{false, true} {
			for i := range pts {
				b := MarshalPoint(c, &pts[i], compressed)
				if len(b) != PointSize(c, compressed) {
					t.Fatalf("%s: encoded size %d", name, len(b))
				}
				back, err := UnmarshalPoint(c, b)
				if err != nil {
					t.Fatalf("%s compressed=%v point %d: %v", name, compressed, i, err)
				}
				if !c.EqualAffine(&back, &pts[i]) {
					t.Fatalf("%s compressed=%v: round trip failed", name, compressed)
				}
			}
		}
	}
}

func TestPointRejectsInvalid(t *testing.T) {
	c := mustCurve(t, "BN254")
	es := ElementSize(c.Fp)
	// off-curve uncompressed point
	bad := make([]byte, 1+2*es)
	bad[0] = PrefixUncompressed
	bad[es] = 5 // x = 5-ish, y = 0: not on curve
	if _, err := UnmarshalPoint(c, bad); err == nil {
		t.Fatal("off-curve point accepted")
	}
	// unknown prefix
	if _, err := UnmarshalPoint(c, append([]byte{0x07}, make([]byte, es)...)); err == nil {
		t.Fatal("unknown prefix accepted")
	}
	// empty
	if _, err := UnmarshalPoint(c, nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
	// malformed infinity
	inf := make([]byte, 1+es)
	inf[3] = 9
	if _, err := UnmarshalPoint(c, inf); err == nil {
		t.Fatal("malformed infinity accepted")
	}
	// compressed x with no curve point: find a non-residue rhs
	found := false
	f := c.Fp
	for x := uint64(1); x < 200 && !found; x++ {
		xe := f.FromUint64(x)
		rhs, tmp := f.NewElement(), f.NewElement()
		f.Square(rhs, xe)
		f.Mul(rhs, rhs, xe)
		f.Mul(tmp, c.A, xe)
		f.Add(rhs, rhs, tmp)
		f.Add(rhs, rhs, c.B)
		if f.Legendre(rhs) == -1 {
			enc := make([]byte, 1+es)
			enc[0] = PrefixCompressedE
			copy(enc[1:], MarshalElement(f, xe))
			if _, err := UnmarshalPoint(c, enc); err == nil {
				t.Fatal("x without a curve point accepted")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no test x found (unexpected)")
	}
}

func TestPointVectorRoundTrip(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	pts := c.SamplePoints(7, 4)
	b := MarshalPoints(c, pts, true)
	back, err := UnmarshalPoints(c, b, len(pts), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !c.EqualAffine(&back[i], &pts[i]) {
			t.Fatalf("vector round trip failed at %d", i)
		}
	}
	if _, err := UnmarshalPoints(c, b[:10], len(pts), true); err == nil {
		t.Fatal("truncated vector accepted")
	}
}
