package gpusim

import (
	"testing"

	"distmsm/internal/kernel"
)

func spec(t testing.TB, v kernel.Variant) kernel.Spec {
	t.Helper()
	s, err := kernel.BuildSpec(v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeviceProfiles(t *testing.T) {
	a, r, amd := A100(), RTX4090(), AMD6900XT()
	// Paper Figure 9: RTX4090 has 2.12× the A100's CUDA int throughput.
	ratio := r.Int32TOPS / a.Int32TOPS
	if ratio < 2.0 || ratio > 2.3 {
		t.Errorf("RTX4090/A100 int ratio = %.2f, want ~2.12", ratio)
	}
	if amd.Int32TOPS >= a.Int32TOPS {
		t.Error("AMD 6900XT should have lower integer throughput than A100")
	}
	if amd.TensorInt8TOPS != 0 {
		t.Error("AMD 6900XT has no int8 matrix unit in this model")
	}
	// The paper's N_T = 2^16 concurrent threads is the A100 class.
	if nt := a.MaxThreads(); nt < 1<<16 {
		t.Errorf("A100 thread capacity %d < 2^16", nt)
	}
}

func TestOccupancyOrderingAcrossCurves(t *testing.T) {
	m := Model{Dev: A100()}
	base := spec(t, kernel.VariantBaseline)
	occ254 := m.Occupancy(base, 254)
	occ377 := m.Occupancy(base, 377)
	occ753 := m.Occupancy(base, 753)
	if !(occ254 >= occ377 && occ377 >= occ753) {
		t.Errorf("occupancy should fall with field width: %v %v %v", occ254, occ377, occ753)
	}
	if occ753 >= 0.2 {
		t.Errorf("753-bit baseline occupancy %v suspiciously high (needs 264+ regs)", occ753)
	}
}

func TestPressureReliefHelpsWideCurvesMore(t *testing.T) {
	// §5.3.3: register-pressure optimisations matter most for MNT4753.
	m := Model{Dev: A100()}
	base, opt := spec(t, kernel.VariantPACC), spec(t, kernel.VariantSpill)
	gain254 := m.ECOpSeconds(base, 254, 1e6) / m.ECOpSeconds(opt, 254, 1e6)
	gain753 := m.ECOpSeconds(base, 753, 1e6) / m.ECOpSeconds(opt, 753, 1e6)
	if gain753 <= gain254 {
		t.Errorf("spill gain: 254-bit %.3f >= 753-bit %.3f; want MNT to gain more", gain254, gain753)
	}
}

func TestPACCBeatsPADD(t *testing.T) {
	m := Model{Dev: A100()}
	padd, pacc := spec(t, kernel.VariantBaseline), spec(t, kernel.VariantPACC)
	for _, bits := range []int{254, 377, 753} {
		if m.ECOpSeconds(pacc, bits, 1e6) >= m.ECOpSeconds(padd, bits, 1e6) {
			t.Errorf("PACC not faster than PADD at %d bits", bits)
		}
	}
}

func TestTensorCoreWaterfall(t *testing.T) {
	// Figure 12 shape: naive TC is *slower* than the spill level (the
	// fragment round trip), compacted TC is faster — on narrow curves.
	m := Model{Dev: A100()}
	spill, tc, tcc := spec(t, kernel.VariantSpill), spec(t, kernel.VariantTensorCore), spec(t, kernel.VariantTCCompact)
	tSpill := m.ECOpSeconds(spill, 254, 1e6)
	tTC := m.ECOpSeconds(tc, 254, 1e6)
	tTCC := m.ECOpSeconds(tcc, 254, 1e6)
	if tTC <= tSpill {
		t.Errorf("naive TC (%.3g) should be slower than spill (%.3g)", tTC, tSpill)
	}
	if tTCC >= tSpill {
		t.Errorf("compacted TC (%.3g) should beat spill (%.3g)", tTCC, tSpill)
	}
	// On a device without tensor cores the TC variants degrade gracefully
	// to the CUDA path.
	amd := Model{Dev: AMD6900XT()}
	if amd.ECOpSeconds(tcc, 254, 1e6) != amd.ECOpSeconds(spill, 254, 1e6) {
		t.Error("TC variant on AMD should equal the CUDA path")
	}
}

func TestECOpSecondsScaling(t *testing.T) {
	m := Model{Dev: A100()}
	s := spec(t, kernel.VariantPACC)
	t1 := m.ECOpSeconds(s, 254, 1e6)
	t2 := m.ECOpSeconds(s, 254, 2e6)
	if t2 <= t1 || t2 > 2.05*t1 {
		t.Errorf("time should scale linearly with ops: %v vs %v", t1, t2)
	}
	if m.ECOpSeconds(s, 254, 0) != 0 {
		t.Error("zero ops should cost zero")
	}
	// Wider fields cost more.
	if m.ECOpSeconds(s, 753, 1e6) <= m.ECOpSeconds(s, 254, 1e6) {
		t.Error("753-bit ops should cost more than 254-bit")
	}
}

func TestAtomicContention(t *testing.T) {
	m := Model{Dev: A100()}
	free := m.GlobalAtomicSeconds(1e6, 1)
	hot := m.GlobalAtomicSeconds(1e6, 128)
	if hot <= free {
		t.Error("contention must increase atomic cost")
	}
	if hot/free < 2 || hot/free > 16 {
		t.Errorf("128-way contention %.1fx; want the saturating regime (~2-3x)", hot/free)
	}
	if m.SharedAtomicSeconds(1e6, 1) >= free {
		t.Error("shared atomics should be cheaper than global")
	}
	// contention < 1 clamps to uncontended.
	if m.GlobalAtomicSeconds(1e6, 0.01) != free {
		t.Error("sub-1 contention should clamp")
	}
}

func TestCPUFarSlowerThanGPU(t *testing.T) {
	s := spec(t, kernel.VariantPACC)
	gpu := Model{Dev: A100()}.ECOpSeconds(s, 254, 1e6)
	cpu := CPUECOpSeconds(Rome7742(), s, 254, 1e6)
	ratio := cpu / gpu
	if ratio < 32 || ratio > 512 {
		t.Errorf("CPU/GPU ratio %.0f out of the paper's ~128x regime", ratio)
	}
}

func TestHostTransfer(t *testing.T) {
	ic := NVLinkDGX()
	small := HostTransferSeconds(1, ic)
	if small < ic.HostLatency {
		t.Error("latency floor missing")
	}
	if HostTransferSeconds(0, ic) != 0 {
		t.Error("zero bytes should cost zero")
	}
	big := HostTransferSeconds(1e9, ic)
	if big < 1e9/(ic.HostLinkGBs*1e9) {
		t.Error("bandwidth term missing")
	}
}

func TestClusterAndCost(t *testing.T) {
	if _, err := NewCluster(A100(), 0); err == nil {
		t.Fatal("expected error for empty cluster")
	}
	cl, err := NewCluster(A100(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Model().Dev.Name != "NVIDIA A100" {
		t.Fatal("model device mismatch")
	}

	c := Cost{Scatter: 1, BucketSum: 4, BucketReduce: 2, WindowReduce: 0.5, Transfer: 0.5}
	if got := c.Total(); got != 8 {
		t.Errorf("serial total = %v, want 8", got)
	}
	// CPU-overlapped reduce hides behind GPU time...
	c.ReduceOnCPU = true
	if got := c.Total(); got != 6 {
		t.Errorf("overlapped total = %v, want 6 (reduce hidden)", got)
	}
	// ...unless it dominates.
	c.BucketReduce = 100
	if got := c.Total(); got != 100.5 {
		t.Errorf("dominated total = %v, want 100.5", got)
	}

	var acc Cost
	acc.AddInPlace(Cost{Scatter: 1})
	acc.AddInPlace(Cost{BucketSum: 2, ReduceOnCPU: true})
	if acc.Scatter != 1 || acc.BucketSum != 2 || !acc.ReduceOnCPU {
		t.Error("AddInPlace wrong")
	}
	if Milliseconds(0.5) != 500 {
		t.Error("Milliseconds wrong")
	}
}

func TestNodes(t *testing.T) {
	for _, tc := range []struct{ gpus, nodes int }{{1, 1}, {8, 1}, {9, 2}, {16, 2}, {32, 4}} {
		cl, err := NewCluster(A100(), tc.gpus)
		if err != nil {
			t.Fatal(err)
		}
		if got := cl.Nodes(); got != tc.nodes {
			t.Errorf("%d GPUs: %d nodes, want %d", tc.gpus, got, tc.nodes)
		}
	}
}
