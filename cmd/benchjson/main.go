// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, optionally joining a baseline report so
// perf regressions (and the speedups a PR claims) are visible in one
// artifact. It is the back end of `make bench`:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -baseline bench/baseline.json -out BENCH.json
//
// Lines that are not benchmark results (goos/goarch/cpu headers, PASS,
// package summaries) populate the environment metadata or are ignored,
// so arbitrary concatenations of `go test -bench` runs can be piped in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Joined from the baseline report when one is given.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// Report is the top-level JSON artifact.
type Report struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// benchLine matches one result row:
//
//	BenchmarkName[-P]  <iters>  <ns> ns/op  [<B> B/op  <allocs> allocs/op]  ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// Names are joined verbatim: the -P (GOMAXPROCS) tag go test appends at
// P > 1 is part of the name, so stripping it would corrupt benchmark
// names that legitimately end in -digits (PACC/BLS12-381). Capture the
// baseline and the candidate on the same machine.

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				if key == "pkg" {
					pkg = v
				} else {
					rep.Env[key] = v
				}
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		b := Benchmark{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		for _, f := range strings.Split(m[4], "\t") {
			f = strings.TrimSpace(f)
			switch {
			case strings.HasSuffix(f, " B/op"):
				b.BytesPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(f, " B/op"), 64)
			case strings.HasSuffix(f, " allocs/op"):
				b.AllocsPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(f, " allocs/op"), 64)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline report (JSON) to join for speedup columns")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		byName := map[string]Benchmark{}
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for i := range rep.Benchmarks {
			b, ok := byName[rep.Benchmarks[i].Name]
			if !ok {
				continue
			}
			rep.Benchmarks[i].BaselineNsPerOp = b.NsPerOp
			rep.Benchmarks[i].BaselineAllocsPerOp = b.AllocsPerOp
			if rep.Benchmarks[i].NsPerOp > 0 {
				rep.Benchmarks[i].Speedup = b.NsPerOp / rep.Benchmarks[i].NsPerOp
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
