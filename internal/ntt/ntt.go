// Package ntt implements the number-theoretic transform over a prime
// field's 2-adic multiplicative subgroup — the second pillar of zkSNARK
// proof generation next to MSM (§5.1.1). It provides in-place forward and
// inverse transforms, coset transforms (needed by the Groth16 quotient
// polynomial), and polynomial helpers built on them.
package ntt

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"

	"distmsm/internal/field"
)

// Domain is an evaluation domain of size N = 2^k with a precomputed
// primitive N-th root of unity.
type Domain struct {
	F *field.Field
	N int

	root    field.Element // ω, order N
	rootInv field.Element // ω⁻¹
	nInv    field.Element // N⁻¹
	// gen is the coset shift g (the field's smallest non-residue-based
	// generator works; any non-subgroup element does).
	gen    field.Element
	genInv field.Element
}

// NewDomain builds a size-n domain (n must be a power of two within the
// field's 2-adicity).
func NewDomain(f *field.Field, n int) (*Domain, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: domain size %d is not a power of two", n)
	}
	k := bits.TrailingZeros(uint(n))
	root, err := f.RootOfUnity(k)
	if err != nil {
		return nil, err
	}
	d := &Domain{F: f, N: n, root: root}
	d.rootInv = f.NewElement()
	f.Inv(d.rootInv, root)
	nEl := f.FromUint64(uint64(n))
	d.nInv = f.NewElement()
	f.Inv(d.nInv, nEl)
	// Pick a coset shift g with g^N ≠ 1, so the coset never meets the
	// subgroup (the quotient-polynomial division needs Z_H(g·ω^i) ≠ 0).
	gN := f.NewElement()
	for c := uint64(5); ; c += 2 {
		d.gen = f.FromUint64(c)
		f.Exp(gN, d.gen, big.NewInt(int64(n)))
		if !gN.Equal(f.One()) {
			break
		}
	}
	d.genInv = f.NewElement()
	f.Inv(d.genInv, d.gen)
	return d, nil
}

// Forward computes the in-place NTT of a (natural order in, natural order
// out): a[j] ← Σ_i a[i]·ω^(ij).
//
// Deprecated: long-running provers should use ForwardContext so the
// transform can be cancelled or deadlined between butterfly passes.
func (d *Domain) Forward(a []field.Element) { _ = d.ForwardContext(context.Background(), a) }

// ForwardContext computes the in-place NTT of a, honouring ctx between
// butterfly passes: a size-N transform checks the context log2(N)+1
// times, so a cancellation or deadline lands within one pass (O(N) work)
// instead of waiting out the whole transform.
func (d *Domain) ForwardContext(ctx context.Context, a []field.Element) error {
	return d.transform(ctx, a, d.root)
}

// Inverse computes the in-place inverse NTT.
//
// Deprecated: long-running provers should use InverseContext so the
// transform can be cancelled or deadlined between butterfly passes.
func (d *Domain) Inverse(a []field.Element) { _ = d.InverseContext(context.Background(), a) }

// InverseContext computes the in-place inverse NTT, honouring ctx
// between butterfly passes (see ForwardContext).
func (d *Domain) InverseContext(ctx context.Context, a []field.Element) error {
	if err := d.transform(ctx, a, d.rootInv); err != nil {
		return err
	}
	tmp := d.F.NewElement()
	for i := range a {
		d.F.Mul(tmp, a[i], d.nInv)
		a[i].Set(tmp)
	}
	return nil
}

// CosetForward evaluates the polynomial on the coset g·⟨ω⟩: it shifts the
// coefficients by powers of g, then transforms.
//
// Deprecated: long-running provers should use CosetForwardContext so the
// transform can be cancelled or deadlined between butterfly passes.
func (d *Domain) CosetForward(a []field.Element) {
	_ = d.CosetForwardContext(context.Background(), a)
}

// CosetForwardContext evaluates the polynomial on the coset g·⟨ω⟩,
// honouring ctx between butterfly passes (see ForwardContext).
func (d *Domain) CosetForwardContext(ctx context.Context, a []field.Element) error {
	d.shift(a, d.gen)
	return d.ForwardContext(ctx, a)
}

// CosetInverse interpolates from the coset g·⟨ω⟩ back to coefficients.
//
// Deprecated: long-running provers should use CosetInverseContext so the
// transform can be cancelled or deadlined between butterfly passes.
func (d *Domain) CosetInverse(a []field.Element) {
	_ = d.CosetInverseContext(context.Background(), a)
}

// CosetInverseContext interpolates from the coset g·⟨ω⟩ back to
// coefficients, honouring ctx between butterfly passes (see
// ForwardContext).
func (d *Domain) CosetInverseContext(ctx context.Context, a []field.Element) error {
	if err := d.InverseContext(ctx, a); err != nil {
		return err
	}
	d.shift(a, d.genInv)
	return nil
}

func (d *Domain) shift(a []field.Element, g field.Element) {
	f := d.F
	pw := f.One()
	tmp := f.NewElement()
	for i := range a {
		f.Mul(tmp, a[i], pw)
		a[i].Set(tmp)
		f.Mul(tmp, pw, g)
		pw.Set(tmp)
	}
}

// transform is the iterative radix-2 Cooley–Tukey NTT with the given
// primitive root. The context is checked before the bit-reversal and
// between the log2(N) butterfly passes; a cancelled transform leaves the
// slice in an intermediate state the caller must discard.
func (d *Domain) transform(ctx context.Context, a []field.Element, omega field.Element) error {
	n := len(a)
	if n != d.N {
		panic(fmt.Sprintf("ntt: input length %d != domain size %d", n, d.N))
	}
	if n == 1 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f := d.F
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	t1, t2 := f.NewElement(), f.NewElement()
	for size := 2; size <= n; size <<= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		half := size >> 1
		// w_size = ω^(N/size)
		w := omega.Clone()
		for m := n; m > size; m >>= 1 {
			f.Square(t1, w)
			w.Set(t1)
		}
		for start := 0; start < n; start += size {
			tw := f.One()
			for k := start; k < start+half; k++ {
				f.Mul(t1, a[k+half], tw)
				f.Sub(t2, a[k], t1)
				f.Add(a[k], a[k], t1)
				a[k+half].Set(t2)
				f.Mul(t1, tw, w)
				tw.Set(t1)
			}
		}
	}
	return nil
}

// MulPolys multiplies two coefficient vectors via the NTT, returning a
// product of length d.N (the caller guarantees deg(a)+deg(b) < N).
func (d *Domain) MulPolys(a, b []field.Element) ([]field.Element, error) {
	if len(a) > d.N || len(b) > d.N {
		return nil, fmt.Errorf("ntt: operands exceed domain size")
	}
	f := d.F
	pa := make([]field.Element, d.N)
	pb := make([]field.Element, d.N)
	for i := range pa {
		pa[i] = f.NewElement()
		pb[i] = f.NewElement()
		if i < len(a) {
			pa[i].Set(a[i])
		}
		if i < len(b) {
			pb[i].Set(b[i])
		}
	}
	d.Forward(pa)
	d.Forward(pb)
	tmp := f.NewElement()
	for i := range pa {
		f.Mul(tmp, pa[i], pb[i])
		pa[i].Set(tmp)
	}
	d.Inverse(pa)
	return pa, nil
}

// EvaluatePoly computes Σ coeffs[i]·x^i by Horner's rule (reference for
// property tests).
func EvaluatePoly(f *field.Field, coeffs []field.Element, x field.Element) field.Element {
	acc := f.NewElement()
	tmp := f.NewElement()
	for i := len(coeffs) - 1; i >= 0; i-- {
		f.Mul(tmp, acc, x)
		f.Add(acc, tmp, coeffs[i])
	}
	return acc
}

// Gen returns the coset shift g used by the coset transforms.
func (d *Domain) Gen() field.Element { return d.gen.Clone() }

// Root returns the domain's primitive N-th root of unity.
func (d *Domain) Root() field.Element { return d.root.Clone() }
