// Package kzg implements the KZG polynomial commitment scheme over
// BN254 — the primitive the paper names as MSM's home ("MSM plays a
// pivotal role in polynomial commitments for zkSNARK", §2.2). Committing
// is exactly an MSM over the structured reference string, so the
// commitment path accepts the same pluggable MSM backend as the Groth16
// prover and can run on the simulated multi-GPU DistMSM engine.
package kzg

import (
	"fmt"
	"math/rand"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/msm"
	"distmsm/internal/pairing"
	"distmsm/internal/transcript"
)

// SRS is the structured reference string: powers of a secret τ in G1 and
// τ·G2 for the pairing check.
type SRS struct {
	// G1 holds τ^i·G for i = 0..Degree.
	G1 []curve.PointAffine
	// TauG2 is τ·H for the verifier's pairing equation.
	TauG2 pairing.G2Affine
}

// Degree returns the largest committable polynomial degree.
func (s *SRS) Degree() int { return len(s.G1) - 1 }

// MSMFunc routes the commitment MSMs (same shape as groth16.MSMFunc).
type MSMFunc func(points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error)

// Scheme is a KZG commitment engine.
type Scheme struct {
	P  *pairing.Pairing
	Fr *field.Field
	// MSM overrides the commitment multi-scalar multiplication
	// (nil = CPU Pippenger).
	MSM MSMFunc
}

// NewScheme builds the BN254 KZG engine.
func NewScheme() (*Scheme, error) {
	p, err := pairing.NewBN254()
	if err != nil {
		return nil, err
	}
	return &Scheme{P: p, Fr: p.Fr}, nil
}

// Setup runs the (simulated) powers-of-tau ceremony for the given degree
// bound, discarding τ. The G1 powers are produced with a fixed-base comb
// and batch normalisation.
func (s *Scheme) Setup(degree int, rnd *rand.Rand) (*SRS, error) {
	if degree < 1 {
		return nil, fmt.Errorf("kzg: degree must be >= 1, got %d", degree)
	}
	fr := s.Fr
	tau := fr.Rand(rnd)
	if tau.IsZero() {
		tau = fr.One()
	}
	srs := &SRS{G1: make([]curve.PointAffine, degree+1)}
	comb := s.P.Curve.NewComb(&s.P.Curve.Gen, 8)
	pw := fr.One()
	tmp := fr.NewElement()
	jac := make([]*curve.PointXYZZ, degree+1)
	for i := 0; i <= degree; i++ {
		jac[i] = comb.Mul(frNat(fr, pw))
		fr.Mul(tmp, pw, tau)
		pw.Set(tmp)
	}
	srs.G1 = s.P.Curve.BatchToAffine(jac)
	srs.TauG2 = s.P.G2.ScalarMulFr(&s.P.G2.Gen, fr, tau)
	return srs, nil
}

func frNat(fr *field.Field, k field.Element) bigint.Nat {
	return bigint.FromBig(fr.ToBig(k), fr.Width())
}

func (s *Scheme) msm(points []curve.PointAffine, coeffs []field.Element) (*curve.PointXYZZ, error) {
	fn := s.MSM
	if fn == nil {
		fn = func(ps []curve.PointAffine, ks []bigint.Nat) (*curve.PointXYZZ, error) {
			return msm.MSM(s.P.Curve, ps, ks, msm.Config{Signed: true})
		}
	}
	ks := make([]bigint.Nat, len(coeffs))
	for i, c := range coeffs {
		ks[i] = frNat(s.Fr, c)
	}
	return fn(points[:len(coeffs)], ks)
}

// Commit computes C = Σ coeffs[i]·τ^i·G — one MSM over the SRS.
func (s *Scheme) Commit(srs *SRS, coeffs []field.Element) (curve.PointAffine, error) {
	if len(coeffs) == 0 || len(coeffs) > len(srs.G1) {
		return curve.PointAffine{}, fmt.Errorf("kzg: polynomial degree %d exceeds SRS degree %d",
			len(coeffs)-1, srs.Degree())
	}
	acc, err := s.msm(srs.G1, coeffs)
	if err != nil {
		return curve.PointAffine{}, err
	}
	return s.P.Curve.ToAffine(acc), nil
}

// Open evaluates p at z and produces the witness commitment
// W = Commit((p(X) − p(z))/(X − z)) via synthetic division.
func (s *Scheme) Open(srs *SRS, coeffs []field.Element, z field.Element) (y field.Element, proof curve.PointAffine, err error) {
	fr := s.Fr
	if len(coeffs) == 0 {
		return nil, curve.PointAffine{}, fmt.Errorf("kzg: empty polynomial")
	}
	// Horner evaluation and synthetic division in one pass:
	// q_{i} = c_{i+1} + z·q_{i+1}, remainder = p(z).
	q := make([]field.Element, len(coeffs)-1)
	acc := coeffs[len(coeffs)-1].Clone()
	tmp := fr.NewElement()
	for i := len(coeffs) - 2; i >= 0; i-- {
		if i < len(q) {
			q[i] = acc.Clone()
		}
		fr.Mul(tmp, acc, z)
		fr.Add(acc, tmp, coeffs[i])
	}
	y = acc
	if len(q) == 0 {
		// Constant polynomial: witness is the zero polynomial.
		return y, curve.PointAffine{Inf: true}, nil
	}
	proof, err = s.Commit(srs, q)
	return y, proof, err
}

// Verify checks the opening (z, y, W) against commitment C:
// e(C − y·G, H) · e(−W, τ·H − z·H) == 1.
func (s *Scheme) Verify(srs *SRS, commitment curve.PointAffine, z, y field.Element, proof curve.PointAffine) (bool, error) {
	c := s.P.Curve
	fr := s.Fr
	adder := c.NewAdder()

	// A = C − y·G  (G1)
	yG := adder.ScalarMul(&c.Gen, frNat(fr, y))
	c.Neg(yG)
	accA := c.NewXYZZ()
	c.SetAffine(accA, &commitment)
	adder.Add(accA, yG)
	aAff := c.ToAffine(accA)

	// B = τ·H − z·H  (G2)
	zH := s.P.G2.ScalarMulFr(&s.P.G2.Gen, fr, z)
	negZH := s.P.G2.Neg(&zH)
	bG2 := s.P.G2.Add(&srs.TauG2, &negZH)

	negW := curve.PointAffine{Inf: proof.Inf}
	if !proof.Inf {
		negW = curve.PointAffine{X: proof.X.Clone(), Y: proof.Y.Clone()}
		c.NegAffine(&negW)
	}
	out, err := s.P.PairingProduct(
		[]curve.PointAffine{aAff, negW},
		[]pairing.G2Affine{s.P.G2.Gen, bG2},
	)
	if err != nil {
		return false, err
	}
	return s.P.T.E12IsOne(&out), nil
}

// BatchOpen opens several polynomials at one point z with a single
// aggregated witness: a Fiat–Shamir challenge γ folds the polynomials
// into Σ γ^i·p_i before the division.
func (s *Scheme) BatchOpen(srs *SRS, polys [][]field.Element, z field.Element) (ys []field.Element, proof curve.PointAffine, err error) {
	fr := s.Fr
	if len(polys) == 0 {
		return nil, curve.PointAffine{}, fmt.Errorf("kzg: no polynomials")
	}
	ys = make([]field.Element, len(polys))
	maxLen := 0
	for i, p := range polys {
		if len(p) == 0 {
			return nil, curve.PointAffine{}, fmt.Errorf("kzg: empty polynomial %d", i)
		}
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	tr := transcript.New("kzg-batch")
	tr.Append("z", fr.ToBig(z).Bytes())
	for i, p := range polys {
		y := evalPoly(fr, p, z)
		ys[i] = y
		tr.Append(fmt.Sprintf("y%d", i), fr.ToBig(y).Bytes())
	}
	gamma := tr.Challenge("gamma", fr)

	// folded = Σ γ^i·p_i ; foldedY = Σ γ^i·y_i
	folded := make([]field.Element, maxLen)
	for j := range folded {
		folded[j] = fr.NewElement()
	}
	pw := fr.One()
	tmp := fr.NewElement()
	for _, p := range polys {
		for j, cj := range p {
			fr.Mul(tmp, cj, pw)
			fr.Add(folded[j], folded[j], tmp)
		}
		fr.Mul(tmp, pw, gamma)
		pw.Set(tmp)
	}
	_, proof, err = s.Open(srs, folded, z)
	return ys, proof, err
}

// BatchVerify checks a batch opening against the individual commitments.
func (s *Scheme) BatchVerify(srs *SRS, commitments []curve.PointAffine, z field.Element, ys []field.Element, proof curve.PointAffine) (bool, error) {
	fr := s.Fr
	c := s.P.Curve
	if len(commitments) != len(ys) {
		return false, fmt.Errorf("kzg: %d commitments but %d evaluations", len(commitments), len(ys))
	}
	if len(commitments) == 0 {
		return false, fmt.Errorf("kzg: empty batch")
	}
	// Re-derive γ from the same transcript.
	tr := transcript.New("kzg-batch")
	tr.Append("z", fr.ToBig(z).Bytes())
	for i, y := range ys {
		tr.Append(fmt.Sprintf("y%d", i), fr.ToBig(y).Bytes())
	}
	gamma := tr.Challenge("gamma", fr)

	// Folded commitment Σ γ^i·C_i and evaluation Σ γ^i·y_i.
	adder := c.NewAdder()
	accC := c.NewXYZZ()
	foldedY := fr.NewElement()
	pw := fr.One()
	tmp := fr.NewElement()
	for i := range commitments {
		term := adder.ScalarMul(&commitments[i], frNat(fr, pw))
		adder.Add(accC, term)
		fr.Mul(tmp, ys[i], pw)
		fr.Add(foldedY, foldedY, tmp)
		fr.Mul(tmp, pw, gamma)
		pw.Set(tmp)
	}
	return s.Verify(srs, c.ToAffine(accC), z, foldedY, proof)
}

func evalPoly(f *field.Field, coeffs []field.Element, x field.Element) field.Element {
	acc := f.NewElement()
	tmp := f.NewElement()
	for i := len(coeffs) - 1; i >= 0; i-- {
		f.Mul(tmp, acc, x)
		f.Add(acc, tmp, coeffs[i])
	}
	return acc
}
