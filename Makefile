# Build / CI entry points. `make tier1` is the gate every PR must keep
# green; `make race` runs the engine-bearing packages under the race
# detector (the concurrent MSM engine lives in internal/core).

GO ?= go

.PHONY: all tier1 build vet test race bench examples

all: tier1

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/msm

bench:
	$(GO) test -bench=BenchmarkReal -benchmem -run=^$$ .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scaling
	$(GO) run ./examples/zkproof
	$(GO) run ./examples/kzgcommit
