package service

import "container/heap"

// This file is the pending-job priority queue behind the worker pool.
// The queue replaced PR 4's FIFO slice for tail latency: under a mixed
// workload a strict-FIFO queue lets sixteen 60-second batch jobs pin a
// 200ms-deadline job to a guaranteed miss, so the default order is now
// earliest-deadline-first (EDF) — the schedule that minimises maximum
// lateness on a single resource (Jackson's rule). Arrival order (job ID)
// breaks deadline ties, which makes EDF degrade to exact FIFO for
// uniform-timeout workloads; QueueFIFO keeps the legacy order outright
// for A/B comparison (cmd/loadgen measures both).

// QueuePolicy selects how the pending queue orders jobs.
type QueuePolicy int

const (
	// QueueEDF pops the job with the earliest end-to-end deadline first,
	// breaking ties by arrival order. The default.
	QueueEDF QueuePolicy = iota
	// QueueFIFO pops jobs in strict arrival order — the pre-hardening
	// behaviour, kept selectable so the tail cost of FIFO stays
	// measurable (see cmd/loadgen's adversarial scenarios).
	QueueFIFO
)

// jobQueue is a policy-ordered min-heap of pending jobs. It is not
// self-locking: every method must be called with Service.mu held.
type jobQueue struct {
	policy QueuePolicy
	items  []*Job
}

func (q *jobQueue) Len() int { return len(q.items) }

func (q *jobQueue) Less(i, j int) bool { return q.before(q.items[i], q.items[j]) }

// before is the queue's strict ordering: deadline-then-ID under EDF,
// ID only under FIFO. IDs are unique, so the order is total.
func (q *jobQueue) before(a, b *Job) bool {
	if q.policy == QueueEDF && !a.Deadline.Equal(b.Deadline) {
		return a.Deadline.Before(b.Deadline)
	}
	return a.ID < b.ID
}

func (q *jobQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *jobQueue) Push(x any) { q.items = append(q.items, x.(*Job)) }

func (q *jobQueue) Pop() any {
	last := len(q.items) - 1
	j := q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	return j
}

// add enqueues a job.
func (q *jobQueue) add(j *Job) { heap.Push(q, j) }

// removeAt pops the job at heap index i (0 is the policy head).
func (q *jobQueue) removeAt(i int) *Job { return heap.Remove(q, i).(*Job) }

// bestEligible returns the heap index of the first job in policy order
// for which eligible returns true, or -1 when none qualifies. The heap
// head is the policy minimum, but the minimum of an arbitrary eligible
// subset needs a scan; queues are bounded by Workers+QueueDepth, so the
// scan is short.
func (q *jobQueue) bestEligible(eligible func(*Job) bool) int {
	best := -1
	for i, j := range q.items {
		if !eligible(j) {
			continue
		}
		if best < 0 || q.before(j, q.items[best]) {
			best = i
		}
	}
	return best
}

// bestFor returns the heap index of the first eligible job of the given
// circuit in policy order, or -1 — the circuit-affinity candidate.
func (q *jobQueue) bestFor(circuit string, eligible func(*Job) bool) int {
	best := -1
	for i, j := range q.items {
		if j.Circuit != circuit || !eligible(j) {
			continue
		}
		if best < 0 || q.before(j, q.items[best]) {
			best = i
		}
	}
	return best
}

// oldestID returns the smallest job ID in the queue (the strict-FIFO
// head) — the reference point for counting deadline-driven reorders.
// The boolean is false on an empty queue; an explicit sentinel rather
// than an in-band zero so the contract survives even if job IDs ever
// start at 0 (today Service allocates them from 1, pinned by
// TestJobIDsStartAtOne).
func (q *jobQueue) oldestID() (uint64, bool) {
	var min uint64
	found := false
	for _, j := range q.items {
		if !found || j.ID < min {
			min = j.ID
			found = true
		}
	}
	return min, found
}
