package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// histWith builds a registry-backed histogram with the given bounds and
// feeds it samples.
func histWith(bounds []float64, samples []float64) *Histogram {
	h := NewRegistry().Histogram("q_test_seconds", "", "", bounds)
	for _, v := range samples {
		h.Observe(v)
	}
	return h
}

// TestQuantileSingleBucketUniform pins the interpolation against exact
// values: 100 samples inside one [0, 10] bucket interpolate linearly, so
// pN is exactly N/10.
func TestQuantileSingleBucketUniform(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 5 // bucket position is irrelevant; only the count matters
	}
	h := histWith([]float64{10}, samples)
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5.0}, {0.99, 9.9}, {0.999, 9.99}, {0, 0}, {1, 10},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestQuantileTwoBuckets pins the cross-bucket crossing: 90 samples in
// (0,1], 10 in (1,10].
//
//	p50:  rank 50 inside the first bucket  → 1·(50/90)      = 0.5555…
//	p99:  rank 99, 9 into the second bucket → 1 + 9·(9/10)  = 9.1
//	p999: rank 99.9                         → 1 + 9·(9.9/10) = 9.91
func TestQuantileTwoBuckets(t *testing.T) {
	var samples []float64
	for i := 0; i < 90; i++ {
		samples = append(samples, 0.5)
	}
	for i := 0; i < 10; i++ {
		samples = append(samples, 5)
	}
	h := histWith([]float64{1, 10}, samples)
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50.0 / 90.0},
		{0.99, 9.1},
		{0.999, 9.91},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestQuantileSkipsEmptyBuckets: empty interior buckets are stepped
// over, not interpolated into — the crossing bucket is the first one
// with mass at or past the rank.
func TestQuantileSkipsEmptyBuckets(t *testing.T) {
	// 10 samples in (0,1], none in (1,2], 10 in (2,3].
	var samples []float64
	for i := 0; i < 10; i++ {
		samples = append(samples, 0.5, 2.5)
	}
	h := histWith([]float64{1, 2, 3}, samples)
	// p50 is exactly the full first bucket.
	if got := h.Quantile(0.5); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 1", got)
	}
	// p75: 5 of 10 into the (2,3] bucket → 2.5. The empty (1,2] bucket
	// contributes no width.
	if got := h.Quantile(0.75); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Quantile(0.75) = %v, want 2.5", got)
	}
}

// TestQuantileInfBucketClamps: samples beyond the last finite bound are
// invisible to interpolation; high quantiles clamp to that bound instead
// of inventing values.
func TestQuantileInfBucketClamps(t *testing.T) {
	h := histWith([]float64{1, 2}, []float64{0.5, 100, 200, 300})
	if got := h.Quantile(0.999); got != 2 {
		t.Errorf("Quantile(0.999) = %v, want clamp to last bound 2", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want clamp to last bound 2", got)
	}
	// The low end still interpolates inside the finite buckets.
	if got := h.Quantile(0.1); math.Abs(got-0.4) > 1e-12 {
		// rank 0.4 of the 1 sample in (0,1] → 0.4
		t.Errorf("Quantile(0.1) = %v, want 0.4", got)
	}
}

// TestQuantileEdgeCases: empty histograms and NaN inputs answer NaN; out
// of range q clamps.
func TestQuantileEdgeCases(t *testing.T) {
	h := histWith([]float64{1}, nil)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(0.5)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	if got := h.Quantile(-3); got != 0 {
		t.Errorf("Quantile(-3) = %v, want clamp to 0", got)
	}
	if got := h.Quantile(7); got != 1 {
		t.Errorf("Quantile(7) = %v, want clamp to q=1 → 1.0", got)
	}
}

// TestQuantileMonotone: on random fills over the default buckets the
// estimate is nondecreasing in q — the "monotone interpolation" contract.
func TestQuantileMonotone(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	h := histWith(DefSecondsBuckets, nil)
	for i := 0; i < 1000; i++ {
		h.Observe(math.Exp(rnd.NormFloat64() * 3)) // heavy-tailed
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at previous q (%v)", q, got, prev)
		}
		prev = got
	}
}
