package core

import (
	"errors"
	"sort"
	"testing"

	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
)

func mustCurve(t testing.TB, name string) *curve.Curve {
	t.Helper()
	c, err := curve.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cluster(t testing.TB, n int) *gpusim.Cluster {
	t.Helper()
	cl, err := gpusim.NewCluster(gpusim.A100(), n)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// --- §3.1 workload model ---

func TestPerThreadWorkFigure3Crossover(t *testing.T) {
	// Figure 3 with N=2^26, N_T=2^16, λ=253: the optimal window size is
	// large (≈20) on a single GPU and shrinks as GPUs are added (the
	// paper reports 11 at 16 GPUs; this model's raw §3.1 formula bottoms
	// out at 16 there — see EXPERIMENTS.md — and the full cost-based
	// planner picks 11 for the sizes where scatter and reduce dominate).
	s1 := OptimalWindow(1<<26, 253, 1, 1<<16, 6, 24)
	s16 := OptimalWindow(1<<26, 253, 16, 1<<16, 6, 24)
	s32 := OptimalWindow(1<<26, 253, 32, 1<<16, 6, 24)
	if s1 < 18 || s1 > 22 {
		t.Errorf("1-GPU optimal s = %d, want ~20", s1)
	}
	if s16 < 8 || s16 > 16 {
		t.Errorf("16-GPU optimal s = %d, want small (paper: 11)", s16)
	}
	if s16 >= s1 || s32 > s16 {
		t.Errorf("optimal s must shrink with more GPUs: s1=%d s16=%d s32=%d", s1, s16, s32)
	}
}

func TestPerThreadWorkMonotonicInGPUs(t *testing.T) {
	// At a fixed window size, more GPUs never increases per-thread work.
	for _, s := range []int{8, 11, 16, 20} {
		prev := float64(1 << 62)
		for _, g := range []int{1, 2, 4, 8, 16, 32} {
			w := PerThreadWork(WorkloadParams{N: 1 << 26, ScalarBits: 253, S: s, NGPU: g, NT: 1 << 16})
			if w > prev*1.001 {
				t.Errorf("s=%d: work grew from %d GPUs", s, g/2)
			}
			prev = w
		}
	}
}

func TestPerThreadWorkBucketSplitRegime(t *testing.T) {
	// With more GPUs than windows the bucket-split formula kicks in and
	// keeps scaling.
	p := WorkloadParams{N: 1 << 26, ScalarBits: 253, S: 16, NT: 1 << 16}
	p.NGPU = 16 // = windows
	w16 := PerThreadWork(p)
	p.NGPU = 64 // 4 GPUs per window
	w64 := PerThreadWork(p)
	if w64 >= w16 {
		t.Errorf("bucket splitting should reduce work: %v -> %v", w16, w64)
	}
}

// --- scatter ---

func scatterDigits() []int32 {
	digits := make([]int32, 5000)
	for i := range digits {
		switch i % 5 {
		case 0:
			digits[i] = 0 // skipped
		case 1:
			digits[i] = int32(i%31 + 1)
		case 2:
			digits[i] = -int32(i%31 + 1) // signed
		case 3:
			digits[i] = 31
		default:
			digits[i] = 1
		}
	}
	return digits
}

func normalize(buckets [][]int32) [][]int32 {
	out := make([][]int32, len(buckets))
	for i, b := range buckets {
		out[i] = append([]int32(nil), b...)
		sort.Slice(out[i], func(a, c int) bool { return out[i][a] < out[i][c] })
	}
	return out
}

func TestScatterEquivalence(t *testing.T) {
	digits := scatterDigits()
	naive, err := NaiveScatter(digits, 32)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := HierarchicalScatter(digits, 32, BlockConfig{Threads: 64, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	nb, hb := normalize(naive.Buckets), normalize(hier.Buckets)
	for b := range nb {
		if len(nb[b]) != len(hb[b]) {
			t.Fatalf("bucket %d size differs", b)
		}
		for i := range nb[b] {
			if nb[b][i] != hb[b][i] {
				t.Fatalf("bucket %d contents differ", b)
			}
		}
	}
	// Bucket 0 must stay empty (zero digits are skipped).
	if len(nb[0]) != 0 {
		t.Fatal("bucket 0 should be empty")
	}
}

func TestHierarchicalScatterReducesGlobalAtomics(t *testing.T) {
	digits := scatterDigits()
	naive, _ := NaiveScatter(digits, 32)
	hier, _ := HierarchicalScatter(digits, 32, BlockConfig{Threads: 64, K: 16})
	if hier.Stats.GlobalAtomics >= naive.Stats.GlobalAtomics {
		t.Errorf("hierarchical global atomics %d >= naive %d",
			hier.Stats.GlobalAtomics, naive.Stats.GlobalAtomics)
	}
	// With 1024 points per block and 32 buckets the reduction approaches
	// the block-size factor.
	ratio := float64(naive.Stats.GlobalAtomics) / float64(hier.Stats.GlobalAtomics)
	if ratio < 10 {
		t.Errorf("atomic reduction only %.1fx", ratio)
	}
	if hier.Stats.SharedAtomics == 0 || hier.Stats.Passes == 0 {
		t.Error("hierarchical stats incomplete")
	}
}

func TestScatterErrors(t *testing.T) {
	if _, err := NaiveScatter([]int32{1}, 1); err == nil {
		t.Error("want error for 1 bucket")
	}
	if _, err := NaiveScatter([]int32{99}, 32); err == nil {
		t.Error("want error for out-of-range digit")
	}
	if _, err := HierarchicalScatter([]int32{1}, 32, BlockConfig{}); err == nil {
		t.Error("want error for zero block")
	}
	if _, err := HierarchicalScatter([]int32{99}, 32, DefaultBlock()); err == nil {
		t.Error("want error for out-of-range digit")
	}
}

func TestSharedBytesNeeded(t *testing.T) {
	b := DefaultBlock()
	if got := SharedBytesNeeded(b, 1<<10); got != 2*64*1024+4*1024 {
		t.Errorf("SharedBytesNeeded = %d", got)
	}
	// The s=14 limit of §5.3.2: byte needs exceed A100 shared memory
	// above it.
	a100 := gpusim.A100()
	if SharedBytesNeeded(b, 1<<14) > a100.SharedMemPerSM {
		t.Log("s=14 at the boundary (expected)")
	}
	if SharedBytesNeeded(b, 1<<17) <= a100.SharedMemPerSM {
		t.Error("s=17 should exceed shared memory")
	}
}

// --- plan ---

func TestBuildPlanDefaults(t *testing.T) {
	c := mustCurve(t, "BN254")
	p, err := BuildPlan(c, cluster(t, 16), 1<<22, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.S > 14 || !p.Hierarchical {
		t.Errorf("16-GPU default plan: s=%d hier=%v; want small window + hierarchical", p.S, p.Hierarchical)
	}
	if !p.Signed {
		t.Error("DistMSM uses signed digits by default")
	}
	if p.Spec.Variant != DefaultVariant {
		t.Errorf("default kernel variant = %v", p.Spec.Variant)
	}
	// Single-GPU plan prefers a big window and the naive scatter.
	p1, err := BuildPlan(c, cluster(t, 1), 1<<26, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.S <= 14 {
		t.Errorf("1-GPU default s = %d, want > 14", p1.S)
	}
	if p1.Hierarchical {
		t.Error("large-window plan cannot use the hierarchical scatter (shared memory)")
	}
	// The multi-GPU window is never larger than the single-GPU one.
	p32, err := BuildPlan(c, cluster(t, 32), 1<<26, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p32.S > p1.S {
		t.Errorf("32-GPU s=%d > 1-GPU s=%d", p32.S, p1.S)
	}
}

func TestBuildPlanErrors(t *testing.T) {
	c := mustCurve(t, "BN254")
	if _, err := BuildPlan(c, cluster(t, 1), 0, Options{}); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := BuildPlan(c, cluster(t, 1), 100, Options{WindowSize: 30}); err == nil {
		t.Error("want error for oversized window")
	}
}

func TestAssignBucketsPartition(t *testing.T) {
	for _, tc := range []struct{ windows, buckets, gpus int }{
		{23, 1 << 10, 1}, {23, 1 << 10, 8}, {2, 1 << 10, 3},
		{16, 64, 32}, {5, 7, 4}, {1, 10, 16},
	} {
		as := assignBuckets(tc.windows, tc.buckets, tc.gpus)
		covered := map[[2]int]int{}
		for _, a := range as {
			if a.BucketLo >= a.BucketHi || a.BucketHi > tc.buckets {
				t.Fatalf("%+v: bad range %+v", tc, a)
			}
			if a.GPU < 0 || a.GPU >= tc.gpus || a.Window < 0 || a.Window >= tc.windows {
				t.Fatalf("%+v: bad ids %+v", tc, a)
			}
			for b := a.BucketLo; b < a.BucketHi; b++ {
				covered[[2]int{a.Window, b}]++
			}
		}
		if len(covered) != tc.windows*tc.buckets {
			t.Fatalf("%+v: covered %d of %d units", tc, len(covered), tc.windows*tc.buckets)
		}
		for k, n := range covered {
			if n != 1 {
				t.Fatalf("%+v: unit %v covered %d times", tc, k, n)
			}
		}
		// Balance: no GPU holds more than ~2x the average.
		perGPU := map[int]int{}
		for _, a := range as {
			perGPU[a.GPU] += a.BucketHi - a.BucketLo
		}
		avg := float64(tc.windows*tc.buckets) / float64(tc.gpus)
		for g, n := range perGPU {
			if float64(n) > 2*avg+1 {
				t.Fatalf("%+v: GPU %d overloaded (%d vs avg %.1f)", tc, g, n, avg)
			}
		}
	}
}

// --- functional correctness ---

func TestRunMatchesReference(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, name)
		n := 96
		points := c.SamplePoints(n, 21)
		scalars := c.SampleScalars(n, 22)
		want := c.MSMReference(points, scalars)
		for _, tc := range []struct {
			label string
			gpus  int
			opts  Options
		}{
			{"default-1gpu", 1, Options{WindowSize: 8}},
			{"default-8gpu", 8, Options{WindowSize: 8}},
			{"32gpu-bucket-split", 32, Options{WindowSize: 8}},
			{"unsigned", 4, Options{WindowSize: 8, Unsigned: true}},
			{"naive-scatter", 4, Options{WindowSize: 8, ForceNaiveScatter: true}},
			{"gpu-reduce", 4, Options{WindowSize: 8, ReduceOnGPU: true}},
			{"big-window-naive", 1, Options{WindowSize: 16}},
			{"auto-window", 16, Options{}},
			{"tiny-window", 2, Options{WindowSize: 2}},
			{"baseline-kernel", 2, Options{WindowSize: 8, Variant: kernel.VariantBaseline, VariantSet: true}},
		} {
			res, err := Run(c, cluster(t, tc.gpus), points, scalars, tc.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tc.label, err)
			}
			if !c.EqualXYZZ(res.Point, want) {
				t.Fatalf("%s/%s: wrong MSM result", name, tc.label)
			}
			if res.Cost.Total() <= 0 {
				t.Fatalf("%s/%s: non-positive modeled cost", name, tc.label)
			}
			if res.Stats.PACCOps == 0 {
				t.Fatalf("%s/%s: no accumulate ops recorded", name, tc.label)
			}
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 4)
	// empty inputs are rejected with the typed sentinel
	if _, err := Run(c, cl, nil, nil, Options{}); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty MSM: want ErrEmptyInput, got %v", err)
	}
	// mismatch
	if _, err := Run(c, cl, c.SamplePoints(2, 1), c.SampleScalars(1, 1), Options{}); err == nil {
		t.Fatal("want length mismatch error")
	}
	// single element
	pts := c.SamplePoints(1, 2)
	res, err := Run(c, cl, pts, c.SampleScalars(1, 3), Options{WindowSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := c.MSMReference(pts, c.SampleScalars(1, 3))
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("single-element MSM wrong")
	}
}

func TestRunMNT4753(t *testing.T) {
	c := mustCurve(t, "MNT4753")
	n := 24
	points := c.SamplePoints(n, 31)
	scalars := c.SampleScalars(n, 32)
	want := c.MSMReference(points, scalars)
	res, err := Run(c, cluster(t, 8), points, scalars, Options{WindowSize: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("753-bit DistMSM result wrong")
	}
}

// --- cost model shapes ---

func TestAnalyticScaling(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	n := 1 << 26
	var prev float64
	// Near-linear scaling to 32 GPUs (Figure 8: 31x at N=2^28).
	t1, _ := Analytic(c, cluster(t, 1), n, Options{})
	for _, g := range []int{1, 4, 8, 16, 32} {
		res, err := Analytic(c, cluster(t, g), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Cost.Total()
		if prev != 0 && tot >= prev {
			t.Errorf("no speedup from %d GPUs (%.4g -> %.4g)", g, prev, tot)
		}
		prev = tot
		if g == 32 {
			sp := t1.Cost.Total() / tot
			if sp < 16 || sp > 34 {
				t.Errorf("32-GPU speedup %.1fx outside the near-linear regime", sp)
			}
		}
	}
}

func TestAnalyticGrowsWithN(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 8)
	var prev float64
	for _, n := range []int{1 << 22, 1 << 24, 1 << 26, 1 << 28} {
		res, err := Analytic(c, cl, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.Total() <= prev {
			t.Errorf("cost must grow with N at n=%d", n)
		}
		prev = res.Cost.Total()
	}
}

func TestHierarchicalScatterCostAdvantage(t *testing.T) {
	// Figure 11: at the multi-GPU window sizes (s ≈ 9–11) the
	// hierarchical scatter is much cheaper than the naive one; at large
	// single-GPU windows the naive wins.
	c := mustCurve(t, "BLS12-381")
	cl := cluster(t, 16)
	small := Options{WindowSize: 11}
	smallNaive := Options{WindowSize: 11, ForceNaiveScatter: true}
	h, _ := Analytic(c, cl, 1<<26, small)
	nv, _ := Analytic(c, cl, 1<<26, smallNaive)
	if h.Cost.Scatter >= nv.Cost.Scatter {
		t.Errorf("hierarchical scatter (%.4g) not cheaper than naive (%.4g) at s=11",
			h.Cost.Scatter, nv.Cost.Scatter)
	}
	ratio := nv.Cost.Scatter / h.Cost.Scatter
	if ratio < 2 {
		t.Errorf("s=11 scatter advantage only %.1fx; paper reports ~6.7x", ratio)
	}
	// Smaller windows widen the gap (paper: 18.3x at s=9).
	h9, _ := Analytic(c, cl, 1<<26, Options{WindowSize: 9})
	nv9, _ := Analytic(c, cl, 1<<26, Options{WindowSize: 9, ForceNaiveScatter: true})
	if nv9.Cost.Scatter/h9.Cost.Scatter <= ratio {
		t.Error("scatter advantage should grow as s shrinks")
	}
}

func TestCPUReduceBeatsGPUReduceOnManyGPUs(t *testing.T) {
	// §3.2.3: with small windows on many GPUs, offloading bucket-reduce
	// to the CPU (overlapped) beats the GPU's doubling ladder.
	c := mustCurve(t, "BN254")
	cl := cluster(t, 16)
	cpuR, _ := Analytic(c, cl, 1<<26, Options{WindowSize: 11})
	gpuR, _ := Analytic(c, cl, 1<<26, Options{WindowSize: 11, ReduceOnGPU: true})
	if cpuR.Cost.Total() >= gpuR.Cost.Total() {
		t.Errorf("CPU reduce (%.4g) should beat GPU reduce (%.4g)",
			cpuR.Cost.Total(), gpuR.Cost.Total())
	}
}

func TestSplitNDimCostsMoreCPU(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 32)
	bucketSplit, _ := Analytic(c, cl, 1<<26, Options{WindowSize: 11})
	nSplit, _ := Analytic(c, cl, 1<<26, Options{WindowSize: 11, SplitNDim: true})
	if nSplit.Cost.BucketReduce <= bucketSplit.Cost.BucketReduce {
		t.Error("N-dim splitting should increase the host reduce/merge burden")
	}
}

func TestKernelVariantImprovesCost(t *testing.T) {
	c := mustCurve(t, "MNT4753")
	cl := cluster(t, 8)
	base, _ := Analytic(c, cl, 1<<24, Options{Variant: kernel.VariantBaseline, VariantSet: true})
	full, _ := Analytic(c, cl, 1<<24, Options{})
	if full.Cost.BucketSum >= base.Cost.BucketSum {
		t.Error("full kernel pipeline should beat the baseline PADD kernel")
	}
}

func TestEstimatePipeline(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 8)
	plan, err := BuildPlan(c, cl, 1<<24, Options{WindowSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ReduceOnGPU {
		t.Fatal("test expects the CPU-reduce plan")
	}
	single := plan.EstimateCost().Total()
	const k = 8
	pipe, err := plan.EstimatePipeline(k)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelining k MSMs is cheaper than k independent ones but no
	// cheaper than k times the bottleneck stage.
	if pipe.Total() >= float64(k)*singleUnoverlapped(plan) {
		t.Errorf("pipeline (%.4g) not cheaper than %d serial MSMs", pipe.Total(), k)
	}
	if pipe.Total() < float64(k)*single*0.5 {
		t.Errorf("pipeline implausibly cheap: %.4g vs single %.4g", pipe.Total(), single)
	}
	// count=1 degenerates to the single estimate.
	one, err := plan.EstimatePipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Total() != plan.EstimateCost().Total() {
		t.Error("count=1 should equal the single estimate")
	}
	if _, err := plan.EstimatePipeline(0); err == nil {
		t.Error("count=0 must error")
	}
	// A GPU-reduce plan pipelines nothing: cost is exactly k×single.
	gplan, err := BuildPlan(c, cl, 1<<24, Options{WindowSize: 12, ReduceOnGPU: true})
	if err != nil {
		t.Fatal(err)
	}
	gp, err := gplan.EstimatePipeline(k)
	if err != nil {
		t.Fatal(err)
	}
	if diff := gp.Total() - float64(k)*gplan.EstimateCost().Total(); diff > 1e-12 || diff < -1e-12 {
		t.Error("GPU-reduce pipeline should serialise")
	}
}

// singleUnoverlapped returns the cost of one MSM with the CPU reduce NOT
// hidden (the serial, unpipelined composition).
func singleUnoverlapped(p *Plan) float64 {
	c := p.EstimateCost()
	return c.Scatter + c.BucketSum + c.Transfer + c.BucketReduce + c.WindowReduce
}
