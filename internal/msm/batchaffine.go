package msm

import (
	"fmt"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
)

// BatchAffineSum accumulates points into buckets entirely in affine
// coordinates, amortising the modular inversion of the affine addition
// slope across many buckets with Montgomery's batch-inversion trick —
// the "cheap affine additions" technique of the ZPrize single-GPU
// winners (§6: "lazy Montgomery reduction, precomputation, ..."). An
// affine addition costs 1M + 1S + (amortised) ~3M for the inversion
// versus the 10M of the XYZZ PACC, at the price of a scheduling
// constraint: each bucket can absorb at most one point per round.
//
// digits follow the windowSum convention (0 = skip, negative = negated
// point); the result is the bucket array in affine form.
func BatchAffineSum(c *curve.Curve, points []curve.PointAffine, digits []int32, nBuckets int) []curve.PointAffine {
	f := c.Fp
	buckets := make([]curve.PointAffine, nBuckets)
	for b := range buckets {
		buckets[b].Inf = true
	}

	type pending struct {
		bucket int
		pt     curve.PointAffine
	}
	// Queue of (bucket, point) insertions left to process.
	queue := make([]pending, 0, len(points))
	negY := func(p *curve.PointAffine) curve.PointAffine {
		y := f.NewElement()
		f.Neg(y, p.Y)
		return curve.PointAffine{X: p.X, Y: y}
	}
	for i := range points {
		d := digits[i]
		if d == 0 || points[i].Inf {
			continue
		}
		pt := points[i]
		if d < 0 {
			pt = negY(&points[i])
			d = -d
		}
		queue = append(queue, pending{bucket: int(d), pt: pt})
	}

	adder := c.NewAdder() // fallback for doubling / cancellation edges
	denoms := make([]field.Element, 0, nBuckets)
	ops := make([]pending, 0, nBuckets)

	for len(queue) > 0 {
		// One round: pick at most one insertion per bucket.
		taken := map[int]bool{}
		var next []pending
		denoms = denoms[:0]
		ops = ops[:0]
		for _, p := range queue {
			if taken[p.bucket] {
				next = append(next, p)
				continue
			}
			taken[p.bucket] = true
			acc := &buckets[p.bucket]
			if acc.Inf {
				// First insertion: plain copy.
				buckets[p.bucket] = curve.PointAffine{X: p.pt.X.Clone(), Y: p.pt.Y.Clone()}
				continue
			}
			if acc.X.Equal(p.pt.X) {
				// Doubling or cancellation: route through the XYZZ adder
				// (rare; keeps the batch path simple and correct).
				tmp := c.NewXYZZ()
				c.SetAffine(tmp, acc)
				adder.Acc(tmp, &p.pt)
				buckets[p.bucket] = c.ToAffine(tmp)
				continue
			}
			den := f.NewElement()
			f.Sub(den, p.pt.X, acc.X)
			denoms = append(denoms, den)
			ops = append(ops, p)
		}
		// Batch invert all slopes' denominators at once.
		f.BatchInvert(denoms)
		lam, t, x3, y3 := f.NewElement(), f.NewElement(), f.NewElement(), f.NewElement()
		for i, p := range ops {
			acc := &buckets[p.bucket]
			// λ = (y2 − y1)·(x2 − x1)⁻¹
			f.Sub(t, p.pt.Y, acc.Y)
			f.Mul(lam, t, denoms[i])
			// x3 = λ² − x1 − x2 ; y3 = λ(x1 − x3) − y1
			f.Square(x3, lam)
			f.Sub(x3, x3, acc.X)
			f.Sub(x3, x3, p.pt.X)
			f.Sub(t, acc.X, x3)
			f.Mul(y3, lam, t)
			f.Sub(y3, y3, acc.Y)
			acc.X.Set(x3)
			acc.Y.Set(y3)
		}
		queue = next
	}
	return buckets
}

// BatchAffineMSM is a full MSM built on the batch-affine bucket
// accumulation (serial windows; a reference for the ablation benchmark).
func BatchAffineMSM(c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, cfg Config) (*curve.PointXYZZ, error) {
	if len(points) != len(scalars) {
		return nil, fmt.Errorf("msm: %d points but %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return c.NewXYZZ(), nil
	}
	cfg = cfg.resolve(len(points))
	digits := digitsMatrix(c, scalars, cfg)
	nBuckets := 1 << cfg.WindowSize
	if cfg.Signed {
		nBuckets = 1<<(cfg.WindowSize-1) + 1
	}
	a := c.NewAdder()
	windows := make([]*curve.PointXYZZ, len(digits))
	for j := range digits {
		buckets := BatchAffineSum(c, points, digits[j], nBuckets)
		running := c.NewXYZZ()
		total := c.NewXYZZ()
		for b := nBuckets - 1; b >= 1; b-- {
			if !buckets[b].Inf {
				a.Acc(running, &buckets[b])
			}
			a.Add(total, running)
		}
		windows[j] = total
	}
	return reduceWindows(c, windows, cfg.WindowSize, a), nil
}
