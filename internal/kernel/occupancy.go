package kernel

// This file models how register pressure translates to GPU occupancy and
// kernel throughput (§4.2, §5.3.3). Registers are the 32-bit architectural
// registers of contemporary GPUs, so a big integer costs ⌈bits/32⌉ of
// them — 8 for BN254 up to 24 for MNT4753, matching the paper's "8 to 24".

// RegsPerBigInt returns the 32-bit registers needed for one big integer of
// the given field bit-width.
func RegsPerBigInt(fieldBits int) int { return (fieldBits + 31) / 32 }

// AuxRegisters is the fixed per-thread overhead for addresses, indices and
// loop counters, on top of big-integer storage.
const AuxRegisters = 8

// ThreadRegisters returns the registers per thread for a kernel holding
// peakLive big integers of the given width concurrently.
func ThreadRegisters(peakLive, fieldBits int) int {
	return peakLive*RegsPerBigInt(fieldBits) + AuxRegisters
}

// Occupancy returns the fraction of a streaming multiprocessor's maximum
// resident threads achievable with the given per-thread register count,
// register file size and thread ceiling. Allocation is rounded to warp
// granularity (32 threads).
func Occupancy(regsPerThread, regFilePerSM, maxThreadsPerSM int) float64 {
	if regsPerThread <= 0 {
		regsPerThread = 1
	}
	threads := regFilePerSM / regsPerThread
	threads -= threads % 32
	if threads > maxThreadsPerSM {
		threads = maxThreadsPerSM
	}
	if threads <= 0 {
		threads = 32 // the hardware can always hold one warp (spilling to local)
	}
	return float64(threads) / float64(maxThreadsPerSM)
}

// Variant identifies a PADD-kernel optimisation level, in the cumulative
// order of Figure 12.
type Variant int

const (
	// VariantBaseline is the straightforward PADD (Algorithm 1 order).
	VariantBaseline Variant = iota
	// VariantPACC switches bucket accumulation to the dedicated PACC
	// kernel (Algorithm 4): 10 multiplications, lower pressure.
	VariantPACC
	// VariantOptimalOrder additionally reschedules operations with the
	// brute-force optimal execution sequence (§4.2.1).
	VariantOptimalOrder
	// VariantSpill additionally spills selected big integers to shared
	// memory (§4.2.2).
	VariantSpill
	// VariantTensorCore additionally runs the m×n multiplication of
	// Montgomery reduction on tensor cores (§4.3), without compaction.
	VariantTensorCore
	// VariantTCCompact additionally compacts tensor-core outputs on the
	// fly within registers (§4.3).
	VariantTCCompact
)

var variantNames = [...]string{
	"Baseline", "PADD→PACC", "Optimal Exec Order", "Explicit Spill",
	"MontMul with TC", "On-the-fly Compact",
}

func (v Variant) String() string {
	if int(v) < len(variantNames) {
		return variantNames[v]
	}
	return "Unknown"
}

// Variants lists all optimisation levels in Figure 12 order.
func Variants() []Variant {
	return []Variant{VariantBaseline, VariantPACC, VariantOptimalOrder,
		VariantSpill, VariantTensorCore, VariantTCCompact}
}

// Spec describes one accumulation-kernel configuration: everything the
// GPU cost model needs to price a PADD/PACC-type operation.
type Spec struct {
	Variant Variant
	// Muls is the modular multiplications per point operation.
	Muls int
	// PeakLive is the peak concurrently-live big integers in registers.
	PeakLive int
	// SharedInts is the big integers parked in shared memory per thread.
	SharedInts int
	// SharedTransfers is the register<->shared-memory transfers per op.
	SharedTransfers int
	// TensorCore marks the m×n multiplication as running on tensor cores.
	TensorCore bool
	// TCCompacted marks on-the-fly register compaction of TC outputs.
	TCCompacted bool
}

// BuildSpec derives the kernel Spec for an optimisation level from the
// dataflow model (the numbers are computed, not hard-coded: the
// straightforward orders evaluate to 9 and 11 live integers as in the
// paper, and the search/spill passes produce the improved figures).
func BuildSpec(v Variant) (Spec, error) {
	padd, pacc := PADDGraph(), PACCGraph()
	spec := Spec{Variant: v}
	switch {
	case v == VariantBaseline:
		spec.Muls = padd.MulCount()
		spec.PeakLive = PeakPressure(padd, StraightforwardOrder(padd))
		return spec, nil
	case v == VariantPACC:
		spec.Muls = pacc.MulCount()
		spec.PeakLive = PeakPressure(pacc, StraightforwardOrder(pacc))
		return spec, nil
	}
	sched, err := OptimalSchedule(pacc)
	if err != nil {
		return Spec{}, err
	}
	spec.Muls = pacc.MulCount()
	spec.PeakLive = sched.Peak
	if v == VariantOptimalOrder {
		return spec, nil
	}
	plan, err := PlanSpills(pacc, sched.Order, 5)
	if err != nil {
		return Spec{}, err
	}
	spec.PeakLive = plan.PeakRegisters
	spec.SharedInts = plan.PeakShared
	spec.SharedTransfers = plan.Transfers
	if v == VariantSpill {
		return spec, nil
	}
	spec.TensorCore = true
	spec.TCCompacted = v == VariantTCCompact
	return spec, nil
}

// BuildPADDSpec derives the *general* point-addition kernel (merging two
// partial results) at the given optimisation level. The PADD→PACC switch
// does not apply here — both operands are projective — so bucket-reduce
// style work only benefits from the scheduling, spilling and tensor-core
// optimisations. This asymmetry is why the kernel optimisations lose
// impact as GPUs are added under the single-GPU algorithm (Figure 10):
// the un-shrunk bucket-reduce is PADD-bound.
func BuildPADDSpec(v Variant) (Spec, error) {
	padd := PADDGraph()
	spec := Spec{Variant: v, Muls: padd.MulCount()}
	if v <= VariantPACC {
		spec.PeakLive = PeakPressure(padd, StraightforwardOrder(padd))
		return spec, nil
	}
	sched, err := OptimalSchedule(padd)
	if err != nil {
		return Spec{}, err
	}
	spec.PeakLive = sched.Peak
	if v == VariantOptimalOrder {
		return spec, nil
	}
	plan, err := PlanSpills(padd, sched.Order, 5)
	if err != nil {
		return Spec{}, err
	}
	spec.PeakLive = plan.PeakRegisters
	spec.SharedInts = plan.PeakShared
	spec.SharedTransfers = plan.Transfers
	if v == VariantSpill {
		return spec, nil
	}
	spec.TensorCore = true
	spec.TCCompacted = v == VariantTCCompact
	return spec, nil
}
