package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distmsm/internal/telemetry"
)

// This file pins the PR's tail-latency hardening: per-circuit
// admission quotas, honest Retry-After pricing, EDF starvation
// protection, the EDF/coalescing interaction, and doomed-job shedding
// at dequeue and at prover phase boundaries.

// TestCircuitQuotaAdmission: with CircuitQuota 0.5 on a
// 2-worker/4-deep service, one circuit may hold at most
// ceil(0.5*6) = 3 outstanding jobs; the fourth bounces with a
// Quota-flagged QueueFullError while another circuit still admits.
func TestCircuitQuotaAdmission(t *testing.T) {
	check := leakCheck(t)
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	svc := newTestService(t, 2, 32, func(c *Config) {
		c.Workers = 2
		c.QueueDepth = 4
		c.CircuitQuota = 0.5
		c.OnJobStart = func(*Job) {
			started <- struct{}{}
			<-block
		}
	})
	if err := svc.RegisterSynthetic(context.Background(), "cold", 32); err != nil {
		t.Fatal(err)
	}

	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("hot submission %d rejected: %v", i, err)
		}
		jobs = append(jobs, job)
	}

	_, err := svc.Submit(Request{Circuit: "synthetic", Seed: 99})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-quota submit: want ErrQueueFull, got %v", err)
	}
	var qe *QueueFullError
	if !errors.As(err, &qe) || !qe.Quota || qe.Circuit != "synthetic" {
		t.Fatalf("over-quota rejection not Quota-flagged: %+v (err %v)", qe, err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("quota rejection carries no retry hint: %+v", qe)
	}
	if got := svc.Stats().QuotaRejected; got != 1 {
		t.Fatalf("QuotaRejected = %d, want 1", got)
	}

	// Capacity is 6 and the hot circuit holds only 3: another circuit
	// must still get in — that is the point of the quota.
	cold, err := svc.Submit(Request{Circuit: "cold", Seed: 1})
	if err != nil {
		t.Fatalf("cold circuit rejected while under global capacity: %v", err)
	}
	jobs = append(jobs, cold)

	close(block)
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d after release: %v", job.ID, err)
		}
	}
	shutdownClean(t, svc)
	check()
}

// TestQuotaLanesBoundInFlight: quota lanes cap a circuit's concurrent
// workers at ceil(quota*Workers) even with idle workers available; the
// spare worker picks up another circuit's job instead.
func TestQuotaLanesBoundInFlight(t *testing.T) {
	check := leakCheck(t)
	block := make(chan struct{})
	started := make(chan *Job, 8)
	svc := newTestService(t, 2, 32, func(c *Config) {
		c.Workers = 2
		c.QueueDepth = 4
		c.CircuitQuota = 0.5 // lanes = ceil(0.5*2) = 1
		c.OnJobStart = func(j *Job) {
			started <- j
			<-block
		}
	})
	if err := svc.RegisterSynthetic(context.Background(), "cold", 32); err != nil {
		t.Fatal(err)
	}

	hot1, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := <-started
	if first.ID != hot1.ID {
		t.Fatalf("first started job = %d, want %d", first.ID, hot1.ID)
	}
	// A second hot job must NOT start: its circuit's one lane is taken.
	hot2, err := svc.Submit(Request{Circuit: "synthetic", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-started:
		t.Fatalf("job %d started while its circuit was at its lane quota", j.ID)
	case <-time.After(300 * time.Millisecond):
	}
	// But a cold-circuit job takes the idle worker immediately.
	cold, err := svc.Submit(Request{Circuit: "cold", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-started:
		if j.ID != cold.ID {
			t.Fatalf("idle worker started job %d, want the cold job %d", j.ID, cold.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cold job never started despite an idle worker")
	}

	close(block)
	for _, job := range []*Job{hot1, hot2, cold} {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", job.ID, err)
		}
	}
	shutdownClean(t, svc)
	check()
}

// TestRetryAfterQuotaVsCapacity pins Retry-After honesty: an
// over-quota circuit must be told to wait longer than a submitter
// bouncing off global capacity, because its own slots are the scarce
// resource (they free at ewma*occupancy/lanes, not at the next global
// completion). With the EWMAs pinned to 0.2s, workers=1, depth=5 and
// quota 0.5 (slots 3, lanes 1):
//
//	quota hint    = 0.2s * 3 outstanding / 1 lane = 0.6s
//	capacity hint = 0.2s / 1 in-flight            = 0.2s
func TestRetryAfterQuotaVsCapacity(t *testing.T) {
	check := leakCheck(t)
	block := make(chan struct{})
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 5
		c.CircuitQuota = 0.5
		c.OnJobStart = func(*Job) { <-block }
	})
	if err := svc.RegisterSynthetic(context.Background(), "cold", 32); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	svc.ewmaJobSec = 0.2
	svc.circuits["synthetic"].ewmaSec = 0.2
	svc.mu.Unlock()

	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("hot submission %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	var quotaErr *QueueFullError
	if _, err := svc.Submit(Request{Circuit: "synthetic", Seed: 99}); !errors.As(err, &quotaErr) || !quotaErr.Quota {
		t.Fatalf("want quota rejection, got %v", err)
	}

	// Fill global capacity (6) with the cold circuit, then overflow it.
	for i := 0; i < 3; i++ {
		job, err := svc.Submit(Request{Circuit: "cold", Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("cold submission %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	var capErr *QueueFullError
	if _, err := svc.Submit(Request{Circuit: "cold", Seed: 99}); !errors.As(err, &capErr) || capErr.Quota {
		t.Fatalf("want capacity rejection, got %v", err)
	}

	if quotaErr.RetryAfter <= capErr.RetryAfter {
		t.Fatalf("over-quota hint %v not larger than capacity hint %v",
			quotaErr.RetryAfter, capErr.RetryAfter)
	}
	if want := 600 * time.Millisecond; quotaErr.RetryAfter != want {
		t.Fatalf("quota hint = %v, want %v (ewma*occupancy/lanes)", quotaErr.RetryAfter, want)
	}
	if want := 200 * time.Millisecond; capErr.RetryAfter != want {
		t.Fatalf("capacity hint = %v, want %v (ewma/in-flight)", capErr.RetryAfter, want)
	}

	close(block)
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", job.ID, err)
		}
	}
	shutdownClean(t, svc)
	check()
}

// starvationRun floods one worker with long-deadline heavy jobs behind
// a gate job, trickles in one tight-deadline interactive job, then
// releases the gate and reports whether the interactive job met its
// deadline.
func starvationRun(t *testing.T, policy QueuePolicy) (interactiveErr error, st Stats) {
	t.Helper()
	check := leakCheck(t)
	gate := make(chan struct{})
	gateStarted := make(chan struct{}, 1)
	svc := newTestService(t, 2, 1024, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 12
		c.QueuePolicy = policy
		// A slack gate above the interactive timeout: cache-affinity
		// coalescing must never jump the tight-deadline job here, so
		// the run measures queue ordering alone.
		c.CoalesceSlack = 3 * time.Second * timingScale
		c.OnJobStart = func(j *Job) {
			if j.Seed == 999 {
				gateStarted <- struct{}{}
				<-gate
			}
		}
	})
	if err := svc.RegisterSynthetic(context.Background(), "interactive", 48); err != nil {
		t.Fatal(err)
	}

	// The gate job pins the worker so the backlog builds determin-
	// istically before any ordering decision happens.
	gateJob, err := svc.Submit(Request{Circuit: "synthetic", Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	<-gateStarted
	var heavies []*Job
	for i := 0; i < 8; i++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(i + 1), Timeout: time.Minute})
		if err != nil {
			t.Fatalf("heavy %d: %v", i, err)
		}
		heavies = append(heavies, job)
	}
	interactive, err := svc.Submit(Request{Circuit: "interactive", Seed: 1, Timeout: 2 * time.Second * timingScale})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	_, interactiveErr = interactive.Wait(context.Background())
	if _, err := gateJob.Wait(context.Background()); err != nil {
		t.Fatalf("gate job: %v", err)
	}
	for _, job := range heavies {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("heavy job %d: %v", job.ID, err)
		}
	}
	st = svc.Stats()
	shutdownClean(t, svc)
	check()
	return interactiveErr, st
}

// TestEDFStarvationProtection is the adversarial-mix acceptance
// criterion: a tight-deadline trickle behind a flood of long-deadline
// heavy jobs misses under FIFO and completes under EDF, and the EDF
// run visibly reordered the queue (QueueReorders moved).
func TestEDFStarvationProtection(t *testing.T) {
	if err, st := starvationRun(t, QueueEDF); err != nil {
		t.Fatalf("EDF: interactive job missed its deadline behind the flood: %v (stats %+v)", err, st)
	} else if st.QueueReorders == 0 {
		t.Fatalf("EDF: interactive job completed but QueueReorders = 0 — the EDF path did not reorder")
	}
	if err, _ := starvationRun(t, QueueFIFO); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FIFO: interactive job behind an 8-job flood should miss its 2s deadline, got %v", err)
	}
}

// TestEDFCoalescingByteIdenticalProofs: the same workload proved under
// legacy FIFO/unbounded-coalescing and under EDF with a tight
// coalescing slack (plus quotas and shedding armed) yields
// byte-identical proofs per (circuit, seed) — scheduling policy moves
// jobs, never bits — and neither configuration leaks goroutines.
func TestEDFCoalescingByteIdenticalProofs(t *testing.T) {
	type jobKey struct {
		circuit string
		seed    int64
	}
	run := func(mutate func(*Config)) (map[jobKey]string, Stats) {
		check := leakCheck(t)
		svc := newTestService(t, 2, 48, mutate)
		if err := svc.RegisterSynthetic(context.Background(), "other", 48); err != nil {
			t.Fatal(err)
		}
		var jobs []*Job
		for i := 0; i < 6; i++ {
			circuit := "synthetic"
			if i%2 == 1 {
				circuit = "other"
			}
			timeout := time.Minute
			if i%3 == 0 {
				timeout = 30 * time.Second // mixed deadlines force EDF reorders
			}
			job, err := svc.Submit(Request{Circuit: circuit, Seed: int64(i + 1), Timeout: timeout})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			jobs = append(jobs, job)
		}
		proofs := map[jobKey]string{}
		for _, job := range jobs {
			proof, err := job.Wait(context.Background())
			if err != nil {
				t.Fatalf("job %d: %v", job.ID, err)
			}
			proofs[jobKey{job.Circuit, job.Seed}] = hex.EncodeToString(svc.eng.MarshalProof(proof))
		}
		st := svc.Stats()
		shutdownClean(t, svc)
		check()
		return proofs, st
	}

	legacy, _ := run(func(c *Config) {
		c.Workers = 2
		c.QueuePolicy = QueueFIFO
		c.CoalesceSlack = -1
	})
	hardened, st := run(func(c *Config) {
		c.Workers = 2
		c.QueuePolicy = QueueEDF
		c.CoalesceSlack = time.Millisecond
		c.CircuitQuota = 0.9
		c.ShedDoomed = true
	})
	if len(legacy) != len(hardened) {
		t.Fatalf("proof sets differ in size: %d vs %d", len(legacy), len(hardened))
	}
	for k, p := range legacy {
		if hardened[k] != p {
			t.Errorf("proof for %s/seed %d differs between FIFO and EDF+quota+shed runs", k.circuit, k.seed)
		}
	}
	if st.Completed != 6 || st.ShedExpired+st.ShedDoomed+st.ShedPhase != 0 {
		t.Fatalf("hardened run: stats %+v, want 6 completed and nothing shed", st)
	}
}

// TestShedExpiredAtDequeue: with ShedDoomed on, a job whose deadline
// passed while queued is failed at dequeue without burning a worker —
// a *ShedError unwrapping context.DeadlineExceeded — and the shed is
// visible in Stats and the metrics registry.
func TestShedExpiredAtDequeue(t *testing.T) {
	check := leakCheck(t)
	reg := telemetry.NewRegistry()
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 4
		c.ShedDoomed = true
		c.Metrics = reg
		c.OnJobStart = func(*Job) {
			started <- struct{}{}
			<-block
		}
	})
	gate, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	victim, err := svc.Submit(Request{Circuit: "synthetic", Seed: 2, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // the victim expires in the queue
	close(block)

	_, err = victim.Wait(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shed job must unwrap to DeadlineExceeded, got %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedExpired {
		t.Fatalf("want *ShedError{Reason: expired}, got %v", err)
	}
	if _, err := gate.Wait(context.Background()); err != nil {
		t.Fatalf("gate job: %v", err)
	}
	if st := svc.Stats(); st.ShedExpired != 1 || st.Cancelled != 1 {
		t.Fatalf("stats %+v, want ShedExpired 1 (counted in Cancelled)", st)
	}
	if text := reg.WritePrometheus(); !strings.Contains(text, `distmsm_jobs_shed_total{reason="expired"} 1`) {
		t.Fatalf("metrics missing shed counter:\n%s", text)
	}
	shutdownClean(t, svc)
	check()
}

// TestShedDoomedByCircuitEwma: a job whose remaining budget is below
// the circuit's calibrated EWMA prove time is shed at dequeue even
// though its deadline has not yet passed.
func TestShedDoomedByCircuitEwma(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.ShedDoomed = true
	})
	svc.mu.Lock()
	svc.circuits["synthetic"].ewmaSec = 10 // "this circuit takes 10s"
	svc.mu.Unlock()

	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Wait(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedDoomed {
		t.Fatalf("want *ShedError{Reason: doomed}, got %v", err)
	}
	if shed.Estimate < 9*time.Second || shed.Remaining > time.Second {
		t.Fatalf("shed verdict carries wrong evidence: %+v", shed)
	}
	if st := svc.Stats(); st.ShedDoomed != 1 {
		t.Fatalf("stats %+v, want ShedDoomed 1", st)
	}
	shutdownClean(t, svc)
	check()
}

// TestShedAtPhaseBoundary: mid-prove, a job that can no longer afford
// the next MSM phase (per the circuit's per-phase EWMA) is dropped at
// the phase boundary with reason "phase" — never inside the MSM
// scheduler, so surviving jobs' plans stay untouched.
func TestShedAtPhaseBoundary(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.ShedDoomed = true
	})
	svc.mu.Lock()
	c := svc.circuits["synthetic"]
	for i := range c.phaseEwma {
		c.phaseEwma[i] = 100 // every G1 phase "costs 100s"
	}
	svc.mu.Unlock()

	// The dequeue check passes (no end-to-end EWMA yet), so the job
	// reaches the prover and dies at the first G1 phase boundary.
	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Wait(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedPhase {
		t.Fatalf("want *ShedError{Reason: phase}, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("phase shed must unwrap to DeadlineExceeded, got %v", err)
	}
	if st := svc.Stats(); st.ShedPhase != 1 {
		t.Fatalf("stats %+v, want ShedPhase 1", st)
	}
	shutdownClean(t, svc)
	check()
}

// TestStatsQuantilesOnWire: /v1/stats carries p50/p99/p999 of
// distmsm_job_seconds once jobs have completed, interpolated by
// telemetry.Histogram.Quantile.
func TestStatsQuantilesOnWire(t *testing.T) {
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.Metrics = telemetry.NewRegistry()
	})
	defer shutdownClean(t, svc)
	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire struct {
		Completed  uint64 `json:"Completed"`
		JobSeconds *struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
			P999  float64 `json:"p999"`
		} `json:"job_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatalf("stats not valid JSON: %v", err)
	}
	if wire.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", wire.Completed)
	}
	js := wire.JobSeconds
	if js == nil || js.Count != 1 || js.P50 <= 0 || js.P99 < js.P50 || js.P999 < js.P99 {
		t.Fatalf("job_seconds quantiles malformed: %+v", js)
	}
}
