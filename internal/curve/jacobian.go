package curve

import "distmsm/internal/field"

// PointJacobian is a point in Jacobian coordinates (x = X/Z², y = Y/Z³;
// Z = 0 at infinity). Provided as the comparison coordinate system: the
// paper (after Cohen–Miyaji–Ono) selects XYZZ because its mixed addition
// costs 14 modular multiplications versus Jacobian's effective 16 (and
// the dedicated PACC form drops to 10); the benchmark in curve_test
// measures the two side by side.
type PointJacobian struct {
	X, Y, Z field.Element
}

// NewJacobian returns the point at infinity.
func (c *Curve) NewJacobian() *PointJacobian {
	return &PointJacobian{X: c.Fp.NewElement(), Y: c.Fp.NewElement(), Z: c.Fp.NewElement()}
}

// IsInf reports whether p is the point at infinity.
func (p *PointJacobian) IsInf() bool { return p.Z.IsZero() }

// SetAffineJac sets p to the Jacobian form of affine a.
func (c *Curve) SetAffineJac(p *PointJacobian, a *PointAffine) {
	if a.Inf {
		p.X.SetZero()
		p.Y.SetZero()
		p.Z.SetZero()
		return
	}
	p.X.Set(a.X)
	p.Y.Set(a.Y)
	c.Fp.SetOne(p.Z)
}

// JacToAffine converts p back to affine coordinates.
func (c *Curve) JacToAffine(p *PointJacobian) PointAffine {
	if p.IsInf() {
		return PointAffine{Inf: true}
	}
	f := c.Fp
	zInv, z2, z3 := f.NewElement(), f.NewElement(), f.NewElement()
	f.Inv(zInv, p.Z)
	f.Square(z2, zInv)
	f.Mul(z3, z2, zInv)
	out := PointAffine{X: f.NewElement(), Y: f.NewElement()}
	f.Mul(out.X, p.X, z2)
	f.Mul(out.Y, p.Y, z3)
	return out
}

// JacAdder performs Jacobian-coordinate group operations with private
// scratch space (mirror of Adder for the comparison benchmarks).
type JacAdder struct {
	c                              *Curve
	t1, t2, t3, t4, t5, t6, t7, t8 field.Element
}

// NewJacAdder returns a Jacobian adder for c.
func (c *Curve) NewJacAdder() *JacAdder {
	f := c.Fp
	return &JacAdder{
		c:  c,
		t1: f.NewElement(), t2: f.NewElement(), t3: f.NewElement(), t4: f.NewElement(),
		t5: f.NewElement(), t6: f.NewElement(), t7: f.NewElement(), t8: f.NewElement(),
	}
}

// Double sets p = 2p (dbl-2009-l for a = 0; general-a fallback).
func (a *JacAdder) Double(p *PointJacobian) {
	if p.IsInf() {
		return
	}
	f := a.c.Fp
	A, B, C, D, E, F := a.t1, a.t2, a.t3, a.t4, a.t5, a.t6
	f.Square(A, p.X)
	f.Square(B, p.Y)
	f.Square(C, B)
	// D = 2((X+B)² − A − C)
	f.Add(D, p.X, B)
	f.Square(D, D)
	f.Sub(D, D, A)
	f.Sub(D, D, C)
	f.Double(D, D)
	// E = 3A (+ a·Z⁴ when a ≠ 0)
	f.Double(E, A)
	f.Add(E, E, A)
	if !a.c.A.IsZero() {
		f.Square(F, p.Z)
		f.Square(F, F)
		f.Mul(F, F, a.c.A)
		f.Add(E, E, F)
	}
	f.Square(F, E)
	// Z3 = 2YZ first (X, Y still intact).
	f.Mul(p.Z, p.Y, p.Z)
	f.Double(p.Z, p.Z)
	// X3 = F − 2D
	f.Sub(p.X, F, D)
	f.Sub(p.X, p.X, D)
	// Y3 = E(D − X3) − 8C
	f.Sub(D, D, p.X)
	f.Mul(p.Y, E, D)
	f.Double(C, C)
	f.Double(C, C)
	f.Double(C, C)
	f.Sub(p.Y, p.Y, C)
}

// AccMixed sets acc += q for affine q (madd-2007-bl: 7M + 4S).
func (a *JacAdder) AccMixed(acc *PointJacobian, q *PointAffine) {
	if q.Inf {
		return
	}
	if acc.IsInf() {
		a.c.SetAffineJac(acc, q)
		return
	}
	f := a.c.Fp
	z1z1, u2, s2, h, r := a.t1, a.t2, a.t3, a.t4, a.t5
	f.Square(z1z1, acc.Z)
	f.Mul(u2, q.X, z1z1)
	f.Mul(s2, q.Y, acc.Z)
	f.Mul(s2, s2, z1z1)
	f.Sub(h, u2, acc.X)
	f.Sub(r, s2, acc.Y)
	if h.IsZero() {
		if r.IsZero() {
			a.Double(acc)
			return
		}
		acc.Z.SetZero()
		return
	}
	f.Double(r, r) // r = 2(S2 − Y1)
	hh, i, j, v := a.t6, a.t7, a.t8, u2
	f.Square(hh, h)
	f.Double(i, hh)
	f.Double(i, i) // I = 4HH
	f.Mul(j, h, i)
	f.Mul(v, acc.X, i)
	// Z3 = (Z1 + H)² − Z1Z1 − HH
	f.Add(acc.Z, acc.Z, h)
	f.Square(acc.Z, acc.Z)
	f.Sub(acc.Z, acc.Z, z1z1)
	f.Sub(acc.Z, acc.Z, hh)
	// X3 = r² − J − 2V
	x3 := s2
	f.Square(x3, r)
	f.Sub(x3, x3, j)
	f.Sub(x3, x3, v)
	f.Sub(x3, x3, v)
	// Y3 = r(V − X3) − 2·Y1·J
	f.Sub(v, v, x3)
	f.Mul(v, r, v)
	f.Mul(j, acc.Y, j)
	f.Double(j, j)
	f.Sub(acc.Y, v, j)
	acc.X.Set(x3)
}
