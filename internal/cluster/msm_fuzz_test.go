package cluster

import (
	"testing"

	"distmsm/internal/curve"
)

// FuzzOutsourceWire throws arbitrary bytes at the outsourced-MSM wire
// parsers. The invariants: no parser panics, and junk never passes —
// anything accepted satisfies every bound the validators promise
// (known curve, sane range, exact blob size, capped timeout), and an
// accepted scalar blob decodes to exactly the declared shard's worth of
// width-bounded scalars.
func FuzzOutsourceWire(f *testing.F) {
	f.Add([]byte(`{"job_id":1,"curve":"BN254","point_seed":7,"range_lo":0,"range_hi":2,"scalar_bits":8,"scalars":"01ff"}`))
	f.Add([]byte(`{"job_id":1,"curve":"BLS12-381","point_seed":7,"range_lo":4,"range_hi":5,"scalar_bits":16,"scalars":"beef","timeout_ms":1000}`))
	f.Add([]byte(`{"job_id":1,"result":"deadbeef"}`))
	f.Add([]byte(`{"job_id":1,"error":"boom"}`))
	f.Add([]byte(`{"job_id":1,"result":"dead","error":"both"}`))
	f.Add([]byte(`{"curve":"BN254","point_seed":3,"scalar_seed":-4,"n":64}`))
	f.Add([]byte(`{"curve":"BN254","n":1048577}`))
	f.Add([]byte(`{"curve":"bn254","n":4}`)) // curve names are case-sensitive
	f.Add([]byte(`{"job_id":1,"curve":"BN254","range_lo":-1,"range_hi":0,"scalar_bits":8,"scalars":""}`))
	f.Add([]byte(`{"job_id":1,"curve":"BN254","range_lo":0,"range_hi":1,"scalar_bits":8,"scalars":"zz"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := ParseMSMDispatchRequest(data); err == nil {
			if _, cerr := curve.ByName(req.Curve); cerr != nil {
				t.Fatalf("accepted dispatch with unknown curve %q", req.Curve)
			}
			n := req.RangeHi - req.RangeLo
			if req.RangeLo < 0 || n < 1 || n > MaxMSMShard {
				t.Fatalf("accepted dispatch with bad range [%d, %d)", req.RangeLo, req.RangeHi)
			}
			if req.ScalarBits < 1 || req.ScalarBits > MaxMSMScalarBits {
				t.Fatalf("accepted dispatch with scalar_bits %d", req.ScalarBits)
			}
			if req.Timeout() > MaxDispatchTimeout || req.TimeoutMS < 0 {
				t.Fatalf("accepted dispatch with timeout %v", req.Timeout())
			}
			// The blob's size was validated; decoding may still reject
			// (non-hex, over-width scalars) but must never panic, and what
			// it accepts must be exactly the declared shard.
			if scalars, derr := req.DecodeScalars(); derr == nil {
				if len(scalars) != n {
					t.Fatalf("decoded %d scalars from a %d-point shard", len(scalars), n)
				}
				for i, k := range scalars {
					if k.BitLen() > req.ScalarBits {
						t.Fatalf("scalar %d decoded to %d bits, declared %d", i, k.BitLen(), req.ScalarBits)
					}
				}
			}
		}
		if w, result, err := ParseMSMDispatchResponse(data); err == nil {
			if (w.Error == "") == (len(result) == 0 && w.Result == "") {
				t.Fatalf("accepted response with neither or both of result and error: %+v", w)
			}
		}
		if req, err := ParseMSMRequest(data); err == nil {
			if _, cerr := curve.ByName(req.Curve); cerr != nil {
				t.Fatalf("accepted MSM job with unknown curve %q", req.Curve)
			}
			if req.N < 1 || req.N > MaxMSMPoints {
				t.Fatalf("accepted MSM job with n = %d", req.N)
			}
			if req.Timeout < 0 || req.Timeout > MaxDispatchTimeout {
				t.Fatalf("accepted MSM job with timeout %v", req.Timeout)
			}
		}
	})
}
