// Package bigint implements fixed-width unsigned big-integer arithmetic on
// 64-bit limbs, together with the Montgomery modular-multiplication variants
// (SOS, CIOS, FIOS) analysed by Koç, Acar and Kaliski and referenced by the
// DistMSM paper. It is the substrate under internal/field.
//
// A Nat is a little-endian limb slice of fixed length; all arithmetic
// helpers operate on equal-length operands and write into caller-provided
// destinations so hot paths allocate nothing.
package bigint

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"math/bits"
)

// Nat is an unsigned integer stored as little-endian 64-bit limbs. The
// length of the slice is the (fixed) width; values are not normalised.
type Nat []uint64

// New returns a zero Nat with n limbs.
func New(n int) Nat { return make(Nat, n) }

// Clone returns an independent copy of x.
func (x Nat) Clone() Nat {
	z := make(Nat, len(x))
	copy(z, x)
	return z
}

// Set copies y into x; both must have the same width.
func (x Nat) Set(y Nat) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("bigint: width mismatch %d != %d", len(x), len(y)))
	}
	copy(x, y)
}

// SetZero clears every limb of x.
func (x Nat) SetZero() {
	for i := range x {
		x[i] = 0
	}
}

// SetUint64 sets x to v.
func (x Nat) SetUint64(v uint64) {
	x.SetZero()
	if len(x) > 0 {
		x[0] = v
	}
}

// IsZero reports whether every limb of x is zero.
func (x Nat) IsZero() bool {
	var acc uint64
	for _, l := range x {
		acc |= l
	}
	return acc == 0
}

// Cmp compares x and y, returning -1, 0 or +1. Widths must match.
func (x Nat) Cmp(y Nat) int {
	if len(x) != len(y) {
		panic("bigint: Cmp width mismatch")
	}
	for i := len(x) - 1; i >= 0; i-- {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// Equal reports whether x == y.
func (x Nat) Equal(y Nat) bool { return x.Cmp(y) == 0 }

// Bit returns bit i of x (0 or 1). Out-of-range bits are zero.
func (x Nat) Bit(i int) uint64 {
	if i < 0 || i >= len(x)*64 {
		return 0
	}
	return (x[i/64] >> (uint(i) % 64)) & 1
}

// BitLen returns the length of x in bits (0 for zero).
func (x Nat) BitLen() int {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != 0 {
			return i*64 + bits.Len64(x[i])
		}
	}
	return 0
}

// Bits extracts width bits of x starting at bit offset off, as a uint64.
// width must be at most 64. Bits past the end of x read as zero.
func (x Nat) Bits(off, width int) uint64 {
	if width <= 0 || width > 64 {
		panic("bigint: Bits width out of range")
	}
	limb := off / 64
	shift := uint(off % 64)
	if limb >= len(x) {
		return 0
	}
	v := x[limb] >> shift
	if shift+uint(width) > 64 && limb+1 < len(x) {
		v |= x[limb+1] << (64 - shift)
	}
	if width == 64 {
		return v
	}
	return v & (1<<uint(width) - 1)
}

// AddInto sets z = x + y and returns the carry-out. All widths must match.
func AddInto(z, x, y Nat) (carry uint64) {
	for i := range z {
		z[i], carry = bits.Add64(x[i], y[i], carry)
	}
	return carry
}

// SubInto sets z = x - y and returns the borrow-out. All widths must match.
func SubInto(z, x, y Nat) (borrow uint64) {
	for i := range z {
		z[i], borrow = bits.Sub64(x[i], y[i], borrow)
	}
	return borrow
}

// CondSubInto sets z = x - y when cond is 1 and z = x when cond is 0, in
// constant control flow, returning the borrow that the subtraction would
// produce (masked by cond).
func CondSubInto(z, x, y Nat, cond uint64) uint64 {
	mask := -(cond & 1)
	var borrow uint64
	for i := range z {
		d, b := bits.Sub64(x[i], y[i]&mask, borrow)
		z[i] = d
		borrow = b
	}
	return borrow
}

// MulInto sets z = x * y using schoolbook multiplication. z must have
// len(x)+len(y) limbs and must not alias x or y.
func MulInto(z, x, y Nat) {
	if len(z) != len(x)+len(y) {
		panic("bigint: MulInto destination width")
	}
	for i := range z {
		z[i] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		var carry uint64
		for j, yj := range y {
			hi, lo := bits.Mul64(xi, yj)
			var c uint64
			lo, c = bits.Add64(lo, z[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			z[i+j] = lo
			carry = hi
		}
		z[i+len(y)] = carry
	}
}

// ShlInto sets z = x << s for 0 <= s < 64, returning the bits shifted out.
func ShlInto(z, x Nat, s uint) (out uint64) {
	if s == 0 {
		copy(z, x)
		return 0
	}
	for i := range z {
		nv := x[i]<<s | out
		out = x[i] >> (64 - s)
		z[i] = nv
	}
	return out
}

// ShrInto sets z = x >> s for 0 <= s < 64.
func ShrInto(z, x Nat, s uint) {
	if s == 0 {
		copy(z, x)
		return
	}
	for i := 0; i < len(z); i++ {
		v := x[i] >> s
		if i+1 < len(x) {
			v |= x[i+1] << (64 - s)
		}
		z[i] = v
	}
}

// ToBig converts x to a math/big.Int.
func (x Nat) ToBig() *big.Int {
	buf := make([]byte, len(x)*8)
	for i, l := range x {
		binary.BigEndian.PutUint64(buf[(len(x)-1-i)*8:], l)
	}
	return new(big.Int).SetBytes(buf)
}

// FromBig converts v into a width-limb Nat. It panics if v is negative or
// does not fit.
func FromBig(v *big.Int, width int) Nat {
	if v.Sign() < 0 {
		panic("bigint: FromBig negative")
	}
	if v.BitLen() > width*64 {
		panic(fmt.Sprintf("bigint: value of %d bits does not fit %d limbs", v.BitLen(), width))
	}
	z := New(width)
	w := new(big.Int).Set(v)
	mask := new(big.Int).SetUint64(^uint64(0))
	t := new(big.Int)
	for i := 0; i < width; i++ {
		z[i] = t.And(w, mask).Uint64()
		w.Rsh(w, 64)
	}
	return z
}

// String formats x in hexadecimal.
func (x Nat) String() string { return "0x" + x.ToBig().Text(16) }
