package distmsm

import (
	"context"
	"math/rand"

	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/groth16"
	"distmsm/internal/r1cs"
	"distmsm/internal/workloads"
)

// This file exposes the end-to-end zkSNARK pipeline (Groth16 over BN254)
// whose proof-generation MSMs can be routed through the simulated
// multi-GPU DistMSM engine — the configuration of the paper's Table 4.

// Re-exported zkSNARK types.
type (
	// ConstraintSystem is a rank-1 constraint system over the BN254
	// scalar field.
	ConstraintSystem = r1cs.System
	// Witness is a full R1CS assignment ([1, public..., private...]).
	Witness = []field.Element
	// Proof is a Groth16 proof.
	Proof = groth16.Proof
	// ProvingKey / VerifyingKey are the Groth16 setup outputs.
	ProvingKey   = groth16.ProvingKey
	VerifyingKey = groth16.VerifyingKey
	// FieldElement is a scalar-field element.
	FieldElement = field.Element
)

// SNARK is a Groth16 prover/verifier whose G1 MSMs run on a simulated
// multi-GPU system when one is attached.
type SNARK struct {
	engine *groth16.Engine
	system *System
	// ModeledMSMSeconds accumulates the simulated-GPU cost of the
	// prover's MSMs (zero when no system is attached).
	ModeledMSMSeconds float64
}

// NewSNARK builds the BN254 Groth16 engine. sys may be nil (CPU MSMs).
func NewSNARK(sys *System) (*SNARK, error) {
	e, err := groth16.NewEngine()
	if err != nil {
		return nil, err
	}
	return &SNARK{engine: e, system: sys}, nil
}

// ScalarField returns the BN254 scalar field (for building witnesses).
func (s *SNARK) ScalarField() *field.Field { return s.engine.Fr }

// NewConstraintSystem creates an empty system with nPublic public inputs.
func (s *SNARK) NewConstraintSystem(nPublic int) *ConstraintSystem {
	return r1cs.New(s.engine.Fr, nPublic)
}

// ProductCircuit builds the quickstart circuit (prove knowledge of a
// non-trivial factorisation a·b = c) and returns the system.
func (s *SNARK) ProductCircuit() (*ConstraintSystem, func(a, b FieldElement) (Witness, error)) {
	cs, _, _ := r1cs.BuildProduct(s.engine.Fr)
	return cs, func(a, b FieldElement) (Witness, error) {
		return r1cs.WitnessProduct(cs, a, b)
	}
}

// SyntheticCircuit builds an n-constraint workload-shaped circuit with a
// valid witness (the Table 4 stand-in shape).
func (s *SNARK) SyntheticCircuit(n int, seed int64) (*ConstraintSystem, Witness) {
	return r1cs.BuildSynthetic(s.engine.Fr, n, seed)
}

// Setup runs the trusted setup without cancellation support.
//
// Deprecated: use SetupContext.
func (s *SNARK) Setup(cs *ConstraintSystem, rnd *rand.Rand) (*ProvingKey, *VerifyingKey, error) {
	return s.SetupContext(context.Background(), cs, rnd)
}

// SetupContext runs the trusted setup, honouring ctx between the QAP
// evaluation and the per-variable key-element batches.
func (s *SNARK) SetupContext(ctx context.Context, cs *ConstraintSystem, rnd *rand.Rand) (*ProvingKey, *VerifyingKey, error) {
	return s.engine.SetupContext(ctx, cs, rnd)
}

// Prove generates a proof without cancellation support.
//
// Deprecated: use ProveContext.
func (s *SNARK) Prove(cs *ConstraintSystem, pk *ProvingKey, w Witness, rnd *rand.Rand) (*Proof, error) {
	return s.ProveContext(context.Background(), cs, pk, w, rnd)
}

// ProveContext generates a proof; when a System is attached, the G1
// MSMs run through the concurrent DistMSM engine and their modeled GPU
// time accumulates in ModeledMSMSeconds. The context is honoured through
// the whole pipeline — the quotient's coset NTTs (between butterfly
// passes), every MSM phase boundary, and the MSM shards themselves — so
// a cancel or deadline aborts the prover promptly wherever it lands.
func (s *SNARK) ProveContext(ctx context.Context, cs *ConstraintSystem, pk *ProvingKey, w Witness, rnd *rand.Rand) (*Proof, error) {
	var msmFn groth16.MSMFunc
	if s.system != nil {
		msmFn = func(points []curve.PointAffine, scalars []Scalar) (*curve.PointXYZZ, error) {
			res, err := core.RunContext(ctx, s.engine.P.Curve, s.system.cluster, points, scalars,
				core.Options{WindowSize: 8, Engine: core.EngineConcurrent})
			if err != nil {
				return nil, err
			}
			s.ModeledMSMSeconds += res.Cost.Total()
			return res.Point, nil
		}
	}
	return s.engine.ProveContext(ctx, cs, pk, w, rnd, msmFn)
}

// Verify checks a proof against the public inputs.
func (s *SNARK) Verify(vk *VerifyingKey, proof *Proof, public []FieldElement) (bool, error) {
	return s.engine.Verify(vk, proof, public)
}

// WorkloadEstimate models end-to-end proof generation for one of the
// paper's Table 4 applications on nGPU simulated A100s, returning
// (libsnark CPU seconds, DistMSM seconds).
func WorkloadEstimate(name string, nGPU int) (cpuSec, gpuSec float64, err error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return 0, 0, err
	}
	cpu := workloads.LibsnarkProver(w.Constraints)
	gpu, err := workloads.DistMSMProver(w.Constraints, nGPU)
	if err != nil {
		return 0, 0, err
	}
	return cpu.Total(), gpu.Total(), nil
}

// Workloads lists the Table 4 application names.
func Workloads() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	return out
}
