package cluster

import (
	"testing"
	"time"
)

// TestNodeBreakerLifecycle walks the full state machine: Closed under
// the threshold, tripped Open at it, quarantined through the cooldown,
// a single half-open probe slot, a failed probe straight back to Open,
// and a successful probe re-closing.
func TestNodeBreakerLifecycle(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 3, Cooldown: time.Second}
	var b nodeBreaker
	now := time.Unix(1000, 0)

	if !b.canAdmit(now, cfg) {
		t.Fatal("a fresh closed breaker must admit")
	}
	if admitted, probe := b.admit(now, cfg); !admitted || probe {
		t.Fatalf("closed admission = (%v, probe %v), want admitted without a probe slot", admitted, probe)
	}
	// Failures below the threshold keep it closed.
	for i := 0; i < cfg.FailThreshold-1; i++ {
		if tripped := b.record(false, now, cfg); tripped {
			t.Fatalf("tripped after %d of %d failures", i+1, cfg.FailThreshold)
		}
	}
	if b.state != NodeClosed {
		t.Fatalf("state %v after sub-threshold failures, want closed", b.state)
	}
	// The threshold-th failure trips it open.
	if tripped := b.record(false, now, cfg); !tripped {
		t.Fatal("threshold failure did not trip the breaker")
	}
	if b.state != NodeOpen || b.trips != 1 {
		t.Fatalf("state %v trips %d, want open/1", b.state, b.trips)
	}
	// Quarantined until the cooldown elapses.
	if b.canAdmit(now.Add(cfg.Cooldown/2), cfg) {
		t.Fatal("open breaker admitted before its cooldown elapsed")
	}
	probeAt := now.Add(cfg.Cooldown)
	if !b.canAdmit(probeAt, cfg) {
		t.Fatal("open breaker refused admission after its cooldown")
	}
	if admitted, probe := b.admit(probeAt, cfg); !admitted || !probe {
		t.Fatalf("post-cooldown admission = (%v, probe %v), want a consumed probe slot", admitted, probe)
	}
	if b.state != NodeHalfOpen || !b.probing {
		t.Fatalf("state %v probing %v after cooldown admission, want half-open probe", b.state, b.probing)
	}
	// One probe at a time.
	if b.canAdmit(probeAt, cfg) {
		t.Fatal("half-open breaker offered a second concurrent probe")
	}
	if admitted, _ := b.admit(probeAt, cfg); admitted {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A failed probe goes straight back to quarantine.
	if tripped := b.record(false, probeAt, cfg); !tripped {
		t.Fatal("failed probe did not re-trip the breaker")
	}
	if b.state != NodeOpen || b.trips != 2 {
		t.Fatalf("state %v trips %d after failed probe, want open/2", b.state, b.trips)
	}
	// A failure landing while open restarts the cooldown clock.
	late := probeAt.Add(cfg.Cooldown / 2)
	b.record(false, late, cfg)
	if b.canAdmit(probeAt.Add(cfg.Cooldown), cfg) {
		t.Fatal("cooldown clock was not restarted by a failure landing while open")
	}
	// A successful probe closes the breaker and clears the streak.
	reprobe := late.Add(cfg.Cooldown)
	if admitted, _ := b.admit(reprobe, cfg); !admitted {
		t.Fatal("re-probe admission failed")
	}
	if tripped := b.record(true, reprobe, cfg); tripped {
		t.Fatal("successful probe reported a trip")
	}
	if b.state != NodeClosed || b.consecutive != 0 || b.probing {
		t.Fatalf("breaker not cleanly closed after successful probe: %+v", b)
	}
}

// TestNodeBreakerReleaseProbe: an abandoned probe (hedge loser, job
// cancelled mid-flight) must give its slot back without recording an
// outcome, or the breaker would stay half-open and unroutable forever;
// and a release arriving after the breaker has already moved on must be
// a no-op.
func TestNodeBreakerReleaseProbe(t *testing.T) {
	cfg := BreakerConfig{FailThreshold: 1, Cooldown: time.Second}
	var b nodeBreaker
	now := time.Unix(2000, 0)

	b.record(false, now, cfg) // trip open
	probeAt := now.Add(cfg.Cooldown)
	if admitted, probe := b.admit(probeAt, cfg); !admitted || !probe {
		t.Fatalf("admission = (%v, probe %v), want a probe", admitted, probe)
	}
	// The probe is abandoned (cancelled), not recorded: the slot comes
	// back and the next admission gets a fresh probe.
	b.releaseProbe()
	if b.state != NodeHalfOpen || b.probing {
		t.Fatalf("state %v probing %v after release, want half-open with a free slot", b.state, b.probing)
	}
	if admitted, probe := b.admit(probeAt, cfg); !admitted || !probe {
		t.Fatalf("re-admission after release = (%v, probe %v), want a probe", admitted, probe)
	}

	// A failure recorded by a concurrent dispatch re-opens the breaker;
	// a late release from the abandoned probe must not disturb it.
	b.record(false, probeAt, cfg)
	b.releaseProbe()
	if b.state != NodeOpen || b.probing {
		t.Fatalf("state %v probing %v, want a late release to leave the open breaker alone", b.state, b.probing)
	}
}

// TestBreakerConfigDefaults: the zero config selects the documented
// defaults.
func TestBreakerConfigDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.FailThreshold != 3 || cfg.Cooldown != 5*time.Second {
		t.Fatalf("defaults = %+v, want threshold 3 cooldown 5s", cfg)
	}
}
