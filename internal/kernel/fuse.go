package kernel

// Fused returns a copy of g in which each single-use multiplication
// result feeding an addition/subtraction is merged with its consumer,
// forming the compound "scheduling units" of §4.2.1. The paper's example:
// executing P = U2 - X1 immediately after U2 = X2*ZZ1 means U2 lives only
// in the multiplier's scratch register, "removing U2 from the set of live
// variables, adding only P". A consumer may absorb several producers
// (Y3 = R*T − Ya*PPP merges two multiplications); compound units are not
// themselves fused further. This collapses PACC's 17 raw operations into
// the paper's 12 scheduling units.
func Fused(g *Graph) *Graph {
	outputs := map[string]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	uses := map[string][]int{}
	for i, op := range g.Ops {
		for _, s := range op.Srcs {
			uses[s] = append(uses[s], i)
		}
	}

	merged := make([]bool, len(g.Ops))   // producer merged away
	compound := make([]bool, len(g.Ops)) // consumer became compound
	ops := make([]Op, len(g.Ops))
	copy(ops, g.Ops)

	for i, op := range g.Ops {
		u := uses[op.Dst]
		if !op.Mul || outputs[op.Dst] || len(u) != 1 {
			continue
		}
		j := u[0]
		if g.Ops[j].Mul || compound[i] || merged[i] {
			continue
		}
		// Merge producer i into consumer j.
		var srcs []string
		seen := map[string]bool{}
		add := func(s string) {
			if !seen[s] {
				seen[s] = true
				srcs = append(srcs, s)
			}
		}
		for _, s := range ops[j].Srcs {
			if s == op.Dst {
				for _, ps := range ops[i].Srcs {
					add(ps)
				}
			} else {
				add(s)
			}
		}
		ops[j] = Op{
			Name: ops[i].Name + "; " + ops[j].Name,
			Dst:  ops[j].Dst,
			Srcs: srcs,
			Mul:  true,
		}
		merged[i] = true
		compound[j] = true
	}

	out := &Graph{Name: g.Name + "-fused", Inputs: g.Inputs, Outputs: g.Outputs}
	for i, op := range ops {
		if !merged[i] {
			out.Ops = append(out.Ops, op)
		}
	}
	return out
}
