package telemetry

import "context"

// The tracer rides the context through layers that should not know
// about each other: the service attaches a per-job tracer, and the
// Groth16 prover, the NTTs and (via core.Options.Tracer) the MSM
// engines pick it up without any of them growing a telemetry parameter.

type tracerKey struct{}

// NewContext returns ctx carrying tr. A nil tr returns ctx unchanged.
func NewContext(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// FromContext returns the tracer carried by ctx, or nil — and a nil
// *Tracer is a valid no-op everywhere, so callers never need to check.
func FromContext(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}
