package service

import (
	"context"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"time"

	"distmsm/internal/cluster"
	"distmsm/internal/curve"
	"distmsm/internal/serial"
)

// readMSMBody reads an MSM dispatch body. MSM shards carry an explicit
// scalar blob and legitimately exceed the 64 KiB cap of readBody, so
// they get the cluster wire's own (larger, still bounded) cap; the
// parser re-checks the exact size.
func readMSMBody(r *http.Request) []byte {
	b, _ := io.ReadAll(io.LimitReader(r.Body, cluster.MaxMSMBody+1))
	return b
}

// This file is the service's worker-node face: the endpoints and
// methods that let a provd instance serve as one node of a
// cluster.Coordinator's fleet, and the in-process backend the
// coordinator degrades to when every remote node is down.
//
//	POST /v1/cluster/dispatch   coordinator → worker: one proof job
//	  request   cluster.DispatchRequest
//	  response  200 {"job_id", "proof"} on success
//	            200 {"job_id", "error"} on a terminal job error
//	            429 admission rejected (Retry-After, seconds)
//	            404 unknown circuit    503 shutting down
//	            400 malformed          499 coordinator abandoned the job
//
// Cancelling the dispatch request cancels the job: when the coordinator
// hedges a straggling job and another node wins, or a lost lease
// re-dispatches this node's jobs, the abandoned HTTP request's context
// dies and the worker stops burning GPUs on a result nobody wants.
//
// ProveLocal and VerifyProof structurally satisfy cluster.LocalBackend,
// so a *Service plugs into cluster.Config.Local without this package
// and internal/cluster importing each other cyclically (cluster stays
// free of a service dependency; service imports cluster only for the
// wire types).

// ProveLocal proves (circuit, seed) through the service's own queue and
// returns the marshalled proof. The job deadline is ctx's deadline when
// it has one (the coordinator's end-to-end job deadline), the service
// default otherwise. It is the coordinator's degrade-to-local backend
// and the in-process flavour of the dispatch endpoint below.
func (s *Service) ProveLocal(ctx context.Context, circuitName string, seed int64) ([]byte, error) {
	req := Request{Circuit: circuitName, Seed: seed}
	if dl, ok := ctx.Deadline(); ok {
		req.Timeout = time.Until(dl)
	}
	job, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	proof, err := job.Wait(ctx)
	if err != nil {
		job.Cancel() // caller gave up or the job failed: either way, stop it
		return nil, err
	}
	return s.eng.MarshalProof(proof), nil
}

// VerifyProof checks a marshalled proof of (circuit, seed) against the
// circuit's verifying key, regenerating the witness's public inputs
// from the seed server-side exactly like proving does. A proof that
// fails to decode reports (false, nil) rather than an error: from the
// caller's seat — the coordinator deciding whether a remote node
// returned garbage — an undecodable proof and a failed pairing check
// are the same verdict.
func (s *Service) VerifyProof(circuitName string, seed int64, proofBytes []byte) (bool, error) {
	s.mu.Lock()
	c := s.circuits[circuitName]
	s.mu.Unlock()
	if c == nil {
		return false, errors.New("service: unknown circuit: " + circuitName)
	}
	proof, err := s.eng.UnmarshalProof(proofBytes)
	if err != nil {
		return false, nil
	}
	w, err := c.witness(seed)
	if err != nil {
		return false, err
	}
	return s.eng.Verify(c.vk, proof, w[1:1+c.cs.NPublic])
}

// handleMSM serves one coordinator-dispatched MSM shard: derive the
// base range from (curve, point_seed), evaluate Σ k_i·P_i over the
// explicit scalars, and return the sum as an uncompressed serial point.
//
//	POST /v1/msm
//	  request   cluster.MSMDispatchRequest
//	  response  200 {"job_id", "result"} on success
//	            200 {"job_id", "error"}  on a terminal evaluation error
//	            400 malformed
//
// The worker cannot tell a real instance from a challenge instance —
// both frame identically (same curve, seed, range and scalar width) —
// so it cannot selectively cheat only where it will not be graded.
// Points are re-derived per request from the deterministic sample
// chain; a production worker would hold its base table resident.
func (s *Service) handleMSM(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := cluster.ParseMSMDispatchRequest(readMSMBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scalars, err := req.DecodeScalars()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	crv, err := curve.ByName(req.Curve)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The sample chain only walks forward, so the shard derives the
	// prefix and slices its range.
	points := crv.SamplePoints(req.RangeHi, req.PointSeed)[req.RangeLo:req.RangeHi]
	if r.Context().Err() != nil {
		http.Error(w, r.Context().Err().Error(), 499)
		return
	}
	sum := crv.MSMReference(points, scalars)
	aff := crv.ToAffine(sum)
	writeJSON(w, cluster.MSMDispatchResponse{
		JobID:  req.JobID,
		Result: hex.EncodeToString(serial.MarshalPoint(crv, &aff, false)),
	})
}

// handleClusterDispatch serves one coordinator-dispatched job.
func (s *Service) handleClusterDispatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := cluster.ParseDispatchRequest(readBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(Request{Circuit: req.Circuit, Seed: req.Seed, Timeout: req.Timeout()})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	proof, err := job.Wait(r.Context())
	if err != nil {
		job.Cancel()
		if r.Context().Err() != nil {
			// The coordinator abandoned the dispatch (hedge lost, lease
			// re-dispatch, client gone): the job is cancelled above and the
			// status code is for the access log only.
			http.Error(w, err.Error(), 499)
			return
		}
		// A terminal job error travels as a dispatch-response error so the
		// coordinator can tell "this node failed the job" from "this node
		// is unreachable".
		writeJSON(w, cluster.DispatchResponse{JobID: req.JobID, Error: err.Error()})
		return
	}
	writeJSON(w, cluster.DispatchResponse{
		JobID: req.JobID,
		Proof: hex.EncodeToString(s.eng.MarshalProof(proof)),
	})
}
