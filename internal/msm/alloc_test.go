package msm

import "testing"

// TestBatchAffineSumAllocFree: a warmed-up BatchAffineAccumulator must
// accumulate a full window with zero heap allocations — the bucket
// coordinates, insertion queues, slope denominators and batch-inversion
// scratch all live in its pre-sized pools.
func TestBatchAffineSumAllocFree(t *testing.T) {
	c := mustCurve(t, "BN254")
	const n, s = 512, 8
	points := c.SamplePoints(n, 55)
	scalars := c.SampleScalars(n, 56)
	digits := digitsMatrix(c, scalars, Config{WindowSize: s, Signed: true}.resolve(n))
	nBuckets := 1<<(s-1) + 1

	acc := NewBatchAffineAccumulator(c, nBuckets)
	acc.Sum(points, digits[0]) // warm-up: sizes the queues
	if allocs := testing.AllocsPerRun(10, func() { acc.Sum(points, digits[1]) }); allocs != 0 {
		t.Errorf("warmed-up BatchAffineAccumulator.Sum allocates %.1f objects/op, want 0", allocs)
	}
}
