// Package distmsm is the public API of this DistMSM reproduction: a
// multi-scalar-multiplication library for zero-knowledge proof systems,
// with an execution engine that schedules Pippenger's algorithm across a
// (simulated) distributed multi-GPU system as described in "Accelerating
// Multi-Scalar Multiplication for Efficient Zero Knowledge Proofs with
// Multi-GPU Systems" (ASPLOS 2024).
//
// Quick start:
//
//	c, _ := distmsm.Curve("BN254")
//	points := c.SamplePoints(1<<12, 1)
//	scalars := c.SampleScalars(1<<12, 2)
//	sys, _ := distmsm.NewSystem(distmsm.A100, 8)
//	res, _ := sys.MSMContext(context.Background(), c, points, scalars)
//	fmt.Println(c.ToAffine(res.Point), res.Cost.Total())
//
// MSMContext is the primary entry point: it is cancellable through its
// context, configured with functional options (WithWindowBits,
// WithEngine, WithWorkers, ...), and by default runs the concurrent
// per-GPU engine — one host worker per simulated GPU, with the CPU
// bucket-reduce of window j overlapped with the bucket-sum of window
// j+1 (§3.2.3). Failures match the sentinel errors ErrLengthMismatch,
// ErrScalarTooWide, ErrEmptyInput and ErrNoGPUs via errors.Is.
//
// The concurrent engine is fault-tolerant: WithFaultInjection turns on
// deterministic fault injection on the simulated GPUs (transient
// errors, stragglers, corrupted results, permanently lost devices), and
// the scheduler recovers with retries, speculative re-execution, shard
// reassignment and randomized result verification while keeping the
// answer bit-identical to the fault-free run. If every GPU is lost the
// run degrades to the serial host engine (Stats.Faults.DegradedToSerial)
// unless the fault config forbids it, in which case ErrAllGPUsLost is
// returned. WithRetryPolicy and WithVerifySampling tune the recovery.
//
// The Options-struct entry points (System.MSM, System.Estimate, ...)
// are retained as deprecated wrappers; see README.md's MIGRATION table.
//
// The packages under internal/ hold the implementation: finite fields,
// curves, the CPU Pippenger, the GPU performance model, the DistMSM
// scheduler, tensor-core arithmetic, NTT, pairing and Groth16. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package distmsm

import (
	"context"

	"distmsm/internal/baselines"
	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/experiments"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
	"distmsm/internal/msm"
	"distmsm/internal/telemetry"
)

// Re-exported core types.
type (
	// CurveParams describes one supported elliptic curve.
	CurveParams = curve.Curve
	// PointAffine is an affine curve point.
	PointAffine = curve.PointAffine
	// PointXYZZ is a point in the XYZZ coordinate system.
	PointXYZZ = curve.PointXYZZ
	// Scalar is a little-endian multi-precision MSM scalar.
	Scalar = bigint.Nat
	// Options configure a DistMSM execution (zero value = full DistMSM).
	//
	// Deprecated: new code should pass functional options (WithEngine,
	// WithWindowBits, ...) to the *Context entry points instead of
	// filling this struct. WithOptions bridges existing values.
	Options = core.Options
	// Result carries the MSM value, modeled cost, execution plan and
	// the per-phase/per-GPU execution statistics.
	Result = core.Result
	// Stats are the execution statistics of a functional run.
	Stats = core.Stats
	// GPUStats is one simulated GPU's share of a concurrent execution.
	GPUStats = core.GPUStats
	// Cost is a modeled wall-time breakdown.
	Cost = gpusim.Cost
	// Device describes a GPU model.
	Device = gpusim.Device
	// Engine selects the host execution engine.
	Engine = core.Engine
	// KernelVariant identifies a PADD-kernel optimisation level.
	KernelVariant = kernel.Variant
	// FaultConfig sets the per-shard fault-injection probabilities and
	// the deterministic seed (see WithFaultInjection).
	FaultConfig = gpusim.FaultConfig
	// FaultStats counts the injected faults and recovery actions of one
	// execution (Stats.Faults).
	FaultStats = core.FaultStats
	// RetryPolicy tunes the fault-tolerant scheduler's retry backoff,
	// per-owner attempt budget and straggler-speculation deadline.
	RetryPolicy = core.RetryPolicy
	// VerifyMode selects the shard-verification check (see
	// WithVerifyMode).
	VerifyMode = core.VerifyMode
	// Tracer is a fixed-capacity span ring that records the phases of an
	// MSM execution (see WithTracer); its contents export as Chrome
	// trace_event JSON via WriteChromeTrace / WriteChromeTraceFile.
	Tracer = telemetry.Tracer
	// TraceSpan is one recorded tracer span.
	TraceSpan = telemetry.Span
	// FixedBase is an immutable fixed-base precomputation (per-window
	// point tables, optionally with the GLV split folded in). Build with
	// PrecomputeBases; attach to an MSM with WithPrecomputedBases.
	FixedBase = core.FixedBase
)

// PrecomputeBases builds the §2.3.1 per-window tables for a fixed base
// vector — the strategy behind WithPrecomputedBases. Honoured options
// are WithWindowBits (0 auto-selects the cheapest merged-window size)
// and WithGLV (fold the endomorphism split into the tables; every base
// point must then lie in the prime-order subgroup). The tables cost
// Windows()× the base-vector storage (see FixedBase.MemoryBytes) and
// are safe for concurrent use; amortise one across many MSMs.
func PrecomputeBases(c *CurveParams, points []PointAffine, opts ...Option) (*FixedBase, error) {
	return core.NewFixedBase(c, points, buildOptions(opts))
}

// NewTracer allocates a span ring with the given capacity (≤ 0 selects
// telemetry.DefaultSpanCapacity). All allocation happens here: recording
// spans into the ring is allocation-free.
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// The execution engines of MSMContext.
const (
	// EngineSerial is the serial reference composition.
	EngineSerial = core.EngineSerial
	// EngineConcurrent runs one worker per simulated GPU and overlaps
	// the host bucket-reduce with later windows' bucket-sum (§3.2.3).
	// It produces bit-identical results to EngineSerial.
	EngineConcurrent = core.EngineConcurrent
)

// Shard-verification modes (WithVerifyMode).
const (
	// VerifyOutsource is the default: the constant-size 2G2T-style
	// outsourced check (internal/outsource) — one aggregation pass with
	// a secret sparse mask, acceptance cost independent of shard size.
	VerifyOutsource = core.VerifyOutsource
	// VerifyRecompute re-executes the sampled shard and compares 64-bit
	// random linear combinations of the bucket accumulators; kept as the
	// differential reference for the outsourced check.
	VerifyRecompute = core.VerifyRecompute
)

// Kernel optimisation levels, in the cumulative Figure 12 order.
const (
	KernelBaseline     = kernel.VariantBaseline
	KernelPACC         = kernel.VariantPACC
	KernelOptimalOrder = kernel.VariantOptimalOrder
	KernelSpill        = kernel.VariantSpill
	KernelTensorCore   = kernel.VariantTensorCore
	KernelTCCompact    = kernel.VariantTCCompact
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrLengthMismatch reports points/scalars vectors of unequal length.
	ErrLengthMismatch = core.ErrLengthMismatch
	// ErrScalarTooWide reports a scalar wider than the curve's scalar
	// field (scalars are rejected, never silently truncated).
	ErrScalarTooWide = core.ErrScalarTooWide
	// ErrNoGPUs reports a system requested with fewer than one GPU.
	ErrNoGPUs = gpusim.ErrNoGPUs
	// ErrEmptyInput reports a zero-length MSM (no points, no scalars).
	ErrEmptyInput = core.ErrEmptyInput
	// ErrAllGPUsLost reports that fault injection removed every device
	// and the fault config forbade degrading to the serial host engine.
	ErrAllGPUsLost = core.ErrAllGPUsLost
	// ErrVerificationFailed reports a shard whose randomized result
	// verification kept failing past the execution budget (a corrupted
	// result the scheduler could not outrun).
	ErrVerificationFailed = core.ErrVerificationFailed
	// ErrBadDevice reports a device spec with non-physical parameters.
	ErrBadDevice = gpusim.ErrBadDevice
	// ErrBadFaultConfig reports a fault config with probabilities outside
	// [0, 1], a class sum above 1, or a negative straggler factor.
	ErrBadFaultConfig = gpusim.ErrBadFaultConfig
)

// Option configures one MSM execution of the *Context entry points.
type Option func(*core.Options)

// WithWindowBits forces the window size s; without it the §3.1 workload
// model searches for the cheapest size.
func WithWindowBits(s int) Option {
	return func(o *core.Options) { o.WindowSize = s }
}

// WithWorkers bounds the host parallelism of the serial engine's
// bucket-sum (0 = GOMAXPROCS). The concurrent engine is unaffected: it
// always runs one worker per simulated GPU.
func WithWorkers(n int) Option {
	return func(o *core.Options) { o.Workers = n }
}

// WithSignedDigits toggles signed-digit recoding (on by default; off
// doubles the bucket count).
func WithSignedDigits(on bool) Option {
	return func(o *core.Options) { o.Unsigned = !on }
}

// WithEngine selects the execution engine. The *Context entry points
// default to EngineConcurrent.
func WithEngine(e Engine) Option {
	return func(o *core.Options) { o.Engine = e }
}

// WithKernelVariant pins the accumulation-kernel optimisation level
// (default: the full tensor-core + compaction pipeline).
func WithKernelVariant(v KernelVariant) Option {
	return func(o *core.Options) { o.Variant = v; o.VariantSet = true }
}

// WithHierarchicalScatter toggles the three-level bucket scatter of
// §3.2.1 (on by default where shared memory allows it).
func WithHierarchicalScatter(on bool) Option {
	return func(o *core.Options) { o.ForceNaiveScatter = !on }
}

// WithGPUReduce keeps bucket-reduce on the GPUs instead of the §3.2.3
// CPU offload.
func WithGPUReduce(on bool) Option {
	return func(o *core.Options) { o.ReduceOnGPU = on }
}

// WithSplitNDim shares a window across GPUs by splitting the point
// range — the paper's rejected first approach, kept for ablations.
func WithSplitNDim(on bool) Option {
	return func(o *core.Options) { o.SplitNDim = on }
}

// WithScatterBlock overrides the scatter thread-block geometry:
// `threads` per block, `k` register-cached coefficients per thread.
func WithScatterBlock(threads, k int) Option {
	return func(o *core.Options) { o.Block = core.BlockConfig{Threads: threads, K: k} }
}

// WithFaultInjection turns on deterministic fault injection on the
// simulated GPUs of the concurrent engine: each shard execution rolls —
// as a pure function of cfg.Seed and the shard's identity, so runs are
// reproducible — for a transient error, a straggler stall, a corrupted
// accumulator or a permanent device loss, and the scheduler recovers
// (retry with backoff, speculation, reassignment to survivors,
// verification) while keeping the result bit-identical to the
// fault-free execution. Recovery actions are reported in Stats.Faults.
func WithFaultInjection(cfg FaultConfig) Option {
	return func(o *core.Options) { c := cfg; o.Faults = &c }
}

// WithRetryPolicy tunes the fault-tolerant scheduler: retry backoff
// bounds, the consecutive-failure budget before a shard moves to
// another GPU, and the straggler-speculation deadline multiple. Zero
// fields keep their defaults.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(o *core.Options) { o.Retry = p }
}

// WithVerifySampling sets the per-shard probability of result
// verification. p = 0 restores the default: verify every shard when
// corrupted-result injection is configured, none otherwise. A negative
// p disables verification; p > 1 clamps to 1. The check that runs on a
// sampled shard is selected by WithVerifyMode: by default the
// constant-size outsourced check (aggregate the shard's references once
// with a secret sparse mask mixed in and compare against the folded
// claim — no per-bucket recompute), or the full recompute-and-RLC
// reference when VerifyRecompute is selected.
func WithVerifySampling(p float64) Option {
	return func(o *core.Options) { o.VerifySampling = p }
}

// WithVerifyMode selects the check WithVerifySampling runs on a sampled
// shard: VerifyOutsource (default) is the 2G2T-style constant-size
// check from internal/outsource; VerifyRecompute re-executes the shard
// and compares 64-bit random linear combinations of the bucket
// accumulators — the differential oracle the outsourced check is
// validated against.
func WithVerifyMode(m VerifyMode) Option {
	return func(o *core.Options) { o.VerifyMode = m }
}

// WithVerifyMaskTerms sets the sparse-mask size s of the outsourced
// shard check (0 = the internal/outsource default). A worker — or a
// simulated fault — that consistently drops a fraction f of a shard's
// work escapes one check with probability ~(1-f)^s. Ignored under
// VerifyRecompute.
func WithVerifyMaskTerms(s int) Option {
	return func(o *core.Options) { o.VerifyMaskTerms = s }
}

// WithTracer records a span for every phase of the execution into tr:
// each window's scatter, every (window, bucket-range) shard execution
// with its GPU, attempt number and speculative flag, each window's
// bucket-reduce, and the final window-reduce. The ring is fixed-capacity
// (oldest spans drop first) and recording is allocation-free; a nil
// tracer — the default — costs a single pointer check on the shard hot
// path. Export the result with Tracer.WriteChromeTrace (chrome://tracing
// / Perfetto format).
func WithTracer(tr *Tracer) Option {
	return func(o *core.Options) { o.Tracer = tr }
}

// WithPrecomputedBases routes the execution through fb's per-window
// precomputed tables (§2.3.1 merged-window evaluation): every window's
// signed digits scatter into one shared bucket array indexing the flat
// 2^(j·s)·B_i table vector, so the MSM runs as a single-window plan with
// no Horner doubling ladder. The scalars must match fb.N() and the
// points argument must be the vector fb was built from (it is not read
// — the tables stand in for it). Build fb once per base vector with
// PrecomputeBases and reuse it across MSMs; results are bit-identical
// to the plain path.
func WithPrecomputedBases(fb *FixedBase) Option {
	return func(o *core.Options) { o.FixedBase = fb }
}

// WithGLV enables the GLV endomorphism strategy (§2.3.2): each scalar k
// is decomposed as k = k1 + λ·k2 with |k1|,|k2| ≈ √r, and the MSM runs
// over 2N points — [P_i…, φ(P_i)…] — with half-width scalars, halving
// the window count. Requires an a=0 curve with a known endomorphism
// (BN254, BLS12-377, BLS12-381) and points in the prime-order subgroup;
// combine with WithPrecomputedBases by building the tables with GLV set.
// Results are bit-identical to the plain path.
func WithGLV(on bool) Option {
	return func(o *core.Options) { o.GLV = on }
}

// WithOptions overlays a legacy Options struct wholesale — the
// migration bridge for code still building core.Options values. The
// struct's zero-valued Engine field cannot express a deliberate choice,
// so the engine selected so far (the EngineConcurrent default, or an
// earlier WithEngine) is preserved unless the struct names a non-zero
// engine; combine with WithEngine(EngineSerial) to force the serial
// reference.
func WithOptions(legacy Options) Option {
	return func(o *core.Options) {
		engine := o.Engine
		*o = legacy
		if legacy.Engine == EngineSerial {
			o.Engine = engine
		}
	}
}

// buildOptions resolves functional options over the *Context defaults.
func buildOptions(opts []Option) core.Options {
	o := core.Options{Engine: core.EngineConcurrent}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// DeviceModel selects a GPU profile for NewSystem.
type DeviceModel int

// The modeled devices of the paper's evaluation (§5.2).
const (
	A100 DeviceModel = iota
	RTX4090
	AMD6900XT
)

func (d DeviceModel) device() Device {
	switch d {
	case RTX4090:
		return gpusim.RTX4090()
	case AMD6900XT:
		return gpusim.AMD6900XT()
	default:
		return gpusim.A100()
	}
}

// Curves lists the supported curve names (Table 1).
func Curves() []string { return curve.Names() }

// Curve returns the named curve.
func Curve(name string) (*CurveParams, error) { return curve.ByName(name) }

// System is a simulated multi-GPU execution target.
type System struct {
	cluster *gpusim.Cluster
}

// NewSystem builds an n-GPU system of the given device model. It
// returns ErrNoGPUs when n < 1.
func NewSystem(model DeviceModel, n int) (*System, error) {
	cl, err := gpusim.NewCluster(model.device(), n)
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl}, nil
}

// GPUs returns the system's GPU count.
func (s *System) GPUs() int { return s.cluster.N }

// DeviceName returns the modeled device name.
func (s *System) DeviceName() string { return s.cluster.Dev.Name }

// MSMContext computes Σ scalars[i]·points[i] with the DistMSM
// scheduler, returning the exact result together with the modeled
// execution cost and the execution statistics.
//
// The context is honoured at every shard boundary (and inside the host
// bucket-reduce): cancelling it makes MSMContext return ctx.Err()
// promptly without leaking workers. With no options the concurrent
// per-GPU engine runs with an auto-selected window size. A zero-length
// input is rejected with ErrEmptyInput.
func (s *System) MSMContext(ctx context.Context, c *CurveParams, points []PointAffine, scalars []Scalar, opts ...Option) (*Result, error) {
	return core.RunContext(ctx, c, s.cluster, points, scalars, buildOptions(opts))
}

// EstimateContext prices an N-point MSM on the system without computing
// it (the paper-scale analytic mode), under the same options as
// MSMContext.
func (s *System) EstimateContext(ctx context.Context, c *CurveParams, n int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.Analytic(c, s.cluster, n, buildOptions(opts))
}

// EstimatePipelinedContext prices `count` back-to-back MSMs with the
// §3.2.3 software pipeline (the CPU bucket-reduce of one MSM hides
// behind the GPU phases of the next), under the same options as
// MSMContext.
func (s *System) EstimatePipelinedContext(ctx context.Context, c *CurveParams, n, count int, opts ...Option) (Cost, error) {
	if err := ctx.Err(); err != nil {
		return Cost{}, err
	}
	plan, err := core.BuildPlan(c, s.cluster, n, buildOptions(opts))
	if err != nil {
		return Cost{}, err
	}
	return plan.EstimatePipeline(count)
}

// MSM computes the MSM with an Options struct and no cancellation.
//
// Deprecated: use MSMContext with functional options. Unlike
// MSMContext, MSM defaults to the serial engine (Options zero value).
func (s *System) MSM(c *CurveParams, points []PointAffine, scalars []Scalar, opts Options) (*Result, error) {
	return core.RunContext(context.Background(), c, s.cluster, points, scalars, opts)
}

// Estimate prices an N-point MSM with an Options struct.
//
// Deprecated: use EstimateContext with functional options.
func (s *System) Estimate(c *CurveParams, n int, opts Options) (*Result, error) {
	return core.Analytic(c, s.cluster, n, opts)
}

// EstimatePipelined prices `count` back-to-back MSMs with an Options
// struct.
//
// Deprecated: use EstimatePipelinedContext with functional options.
func (s *System) EstimatePipelined(c *CurveParams, n, count int, opts Options) (Cost, error) {
	plan, err := core.BuildPlan(c, s.cluster, n, opts)
	if err != nil {
		return Cost{}, err
	}
	return plan.EstimatePipeline(count)
}

// CPUMSM computes the MSM with the host Pippenger implementation
// (reference / fallback path, no simulation). Unlike MSMContext, an
// empty input is answered with a non-nil point at infinity: the CPU
// path has no plan to build, so the identity is well-defined and cheap.
func CPUMSM(c *CurveParams, points []PointAffine, scalars []Scalar) (*PointXYZZ, error) {
	return msm.MSM(c, points, scalars, msm.Config{Signed: true})
}

// BestBaseline returns the modeled time (seconds) and name of the
// fastest published baseline (Table 2) for the configuration.
func BestBaseline(c *CurveParams, model DeviceModel, gpus, n int) (float64, string, error) {
	t, b, err := baselines.BestGPU(c, model.device(), gpus, n)
	if err != nil {
		return 0, "", err
	}
	return t, b.Name, nil
}

// Experiments lists the reproducible tables and figures of the paper.
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one table or figure and returns its report.
func RunExperiment(name string) (string, error) { return experiments.Run(name) }
