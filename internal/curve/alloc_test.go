package curve

import "testing"

// TestAdderAllocFree pins the zero-allocation property of the XYZZ
// point operations: Acc (mixed PACC), Add (PADD) and Double run once per
// point reference in the bucket-sum phase, so any per-op allocation
// dominates an MSM's heap profile.
func TestAdderAllocFree(t *testing.T) {
	for _, c := range testCurves(t) {
		a := c.NewAdder()
		pts := c.SamplePoints(2, 17)
		acc := c.NewXYZZ()
		other := c.NewXYZZ()
		c.SetAffine(other, &pts[1])
		a.Acc(acc, &pts[0]) // leave the empty-accumulator branch

		cases := []struct {
			op string
			fn func()
		}{
			{"Acc", func() { a.Acc(acc, &pts[1]) }},
			{"Add", func() { a.Add(acc, other) }},
			{"Double", func() { a.Double(acc) }},
			{"SetAffine", func() { c.SetAffine(other, &pts[1]) }},
		}
		for _, tc := range cases {
			if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
				t.Errorf("%s: Adder.%s allocates %.1f objects/op, want 0", c.Name, tc.op, allocs)
			}
		}
	}
}
