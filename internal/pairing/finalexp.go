package pairing

import "math/big"

// This file implements the structured final exponentiation
// f^((p¹²−1)/r) = (f^(p⁶−1))^(p²+1) raised to (p⁴−p²+1)/r:
//
//   easy part: f ← conj(f)·f⁻¹ (the p⁶-Frobenius of Fp12/Fp6 is
//              conjugation), then f ← frobᵖ²(f)·f;
//   hard part: one ~1016-bit exponentiation by (p⁴−p²+1)/r.
//
// After the easy part f lies in the cyclotomic subgroup, where inversion
// is conjugation. The split cuts the exponentiation work by ~2.5× versus
// the single (p¹²−1)/r exponent; both paths are kept and cross-checked.

// frobP2Gamma returns γ = ξ^((p²−1)/6); the p²-power Frobenius fixes Fp2
// pointwise and maps w^k ↦ γ^k·w^k. The cache is populated once by
// NewBN254 — after construction this is a pure read, safe for the
// concurrent verifiers the proving service runs.
func (e *Pairing) frobP2Gamma() *E2 {
	if e.gammaP2 != nil {
		return e.gammaP2
	}
	t := e.T
	p2 := new(big.Int).Mul(e.Fp.Modulus, e.Fp.Modulus)
	exp := new(big.Int).Sub(p2, big.NewInt(1))
	exp.Div(exp, big.NewInt(6))
	xi := E2{e.Fp.FromUint64(9), e.Fp.One()}
	g := e2Exp(t, &xi, exp)
	e.gammaP2 = &g
	return e.gammaP2
}

// e2Exp computes x^k in Fp2 by square-and-multiply.
func e2Exp(t *Tower, x *E2, k *big.Int) E2 {
	acc := t.E2One()
	base := t.E2Clone(x)
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			t.E2Mul(&acc, &acc, &base)
		}
		t.E2Square(&base, &base)
	}
	return acc
}

// FrobeniusP2 sets z = x^(p²). In the basis {v^j·w^k}, the coefficient of
// v^j·w^k is scaled by γ^(2j+k) (Fp2 coefficients are fixed by the
// p²-Frobenius).
func (e *Pairing) FrobeniusP2(z, x *E12) {
	t := e.T
	g := e.frobP2Gamma()
	// Powers γ¹..γ⁵.
	var pow [6]E2
	pow[0] = t.E2One()
	for i := 1; i < 6; i++ {
		pow[i] = t.E2Zero()
		t.E2Mul(&pow[i], &pow[i-1], g)
	}
	// exponents: D0 = (c00, c10·v, c20·v²) → 0, 2, 4; D1 = w·(…) → 1, 3, 5.
	t.E2Set(&z.D0.C0, &x.D0.C0)
	t.E2Mul(&z.D0.C1, &x.D0.C1, &pow[2])
	t.E2Mul(&z.D0.C2, &x.D0.C2, &pow[4])
	t.E2Mul(&z.D1.C0, &x.D1.C0, &pow[1])
	t.E2Mul(&z.D1.C1, &x.D1.C1, &pow[3])
	t.E2Mul(&z.D1.C2, &x.D1.C2, &pow[5])
}

// FinalExponentiation maps a Miller-loop output into μ_r via the
// structured easy/hard split.
func (e *Pairing) FinalExponentiation(f *E12) E12 {
	t := e.T
	// Easy part 1: f ← f^(p⁶−1) = conj(f)·f⁻¹.
	inv, conj := t.E12Zero(), t.E12Zero()
	t.E12Inv(&inv, f)
	t.E12Conjugate(&conj, f)
	f1 := t.E12Zero()
	t.E12Mul(&f1, &conj, &inv)
	// Easy part 2: f ← f^(p²+1) = frobᵖ²(f)·f.
	f2 := t.E12Zero()
	e.FrobeniusP2(&f2, &f1)
	t.E12Mul(&f2, &f2, &f1)
	// Hard part: exponent (p⁴ − p² + 1)/r.
	out := t.E12Zero()
	t.E12Exp(&out, &f2, e.hardExp())
	return out
}

func (e *Pairing) hardExp() *big.Int {
	if e.hardPart != nil {
		return e.hardPart
	}
	p2 := new(big.Int).Mul(e.Fp.Modulus, e.Fp.Modulus)
	p4 := new(big.Int).Mul(p2, p2)
	h := new(big.Int).Sub(p4, p2)
	h.Add(h, big.NewInt(1))
	h.Div(h, e.Fr.Modulus)
	e.hardPart = h
	return h
}
