// Package workloads models the end-to-end zkSNARK workloads of Table 4:
// the three applications (Zcash-Sprout, Otti-SGD, Zen-LeNet) with their
// R1CS constraint counts, the libsnark CPU prover, and the DistMSM
// configuration (MSM on 8 GPUs, single-GPU NTT, remaining stages on the
// CPU). Proof generation is decomposed into the paper's measured stages —
// MSM 78.2%, NTT 17.9%, others 3.9% of CPU time — with the MSM component
// derived from this repository's own cost models. Small instances of the
// same circuit shape are really proven and verified by internal/groth16.
package workloads

import (
	"fmt"

	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
	"distmsm/internal/ntt"
)

// Workload is one Table 4 application.
type Workload struct {
	Name        string
	Constraints int
	// PaperLibsnarkSec / PaperDistMSMSec are the published reference
	// numbers, used for paper-vs-model reporting in EXPERIMENTS.md.
	PaperLibsnarkSec float64
	PaperDistMSMSec  float64
}

// All returns the Table 4 workloads.
func All() []Workload {
	return []Workload{
		{Name: "Zcash-Sprout", Constraints: 2585747, PaperLibsnarkSec: 145.8, PaperDistMSMSec: 5.8},
		{Name: "Otti-SGD", Constraints: 6968254, PaperLibsnarkSec: 291.0, PaperDistMSMSec: 11.7},
		{Name: "Zen-LeNet", Constraints: 77689757, PaperLibsnarkSec: 5036.7, PaperDistMSMSec: 188.7},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Breakdown is a proof-generation time split (seconds).
type Breakdown struct {
	MSM, NTT, Other float64
}

// Total returns the end-to-end seconds.
func (b Breakdown) Total() float64 { return b.MSM + b.NTT + b.Other }

// The paper's measured stage proportions of CPU proof generation.
const (
	msmFraction   = 0.782
	nttFraction   = 0.179
	otherFraction = 0.039
)

// LibsnarkEfficiency scales the repository's (dual-Rome) CPU model down
// to libsnark's effective throughput — calibrated once against the
// Zcash-Sprout row of Table 4.
const LibsnarkEfficiency = 0.155

// proofMSMOps returns the EC point operations of one Groth16 proof's MSM
// stage for m constraints: four G1 MSMs of size ~m (A, B1, K, Z) plus a
// G2 MSM whose Fp2 arithmetic costs ~3× G1.
func proofMSMOps(m int) float64 {
	s := 16 // libsnark-class fixed window
	windows := (254 + s - 1) / s
	perMSM := float64(windows) * (float64(m) + float64(int(1)<<s))
	return perMSM * (4 + 3)
}

// LibsnarkProver models the CPU prover for m constraints: the MSM stage
// from the EC cost model, NTT and "others" at the paper's measured
// proportions.
func LibsnarkProver(m int) Breakdown {
	spec, err := kernel.BuildSpec(kernel.VariantBaseline)
	if err != nil {
		panic(err) // static spec construction cannot fail
	}
	cpu := gpusim.Rome7742()
	cpu.ECThroughputRatio *= LibsnarkEfficiency
	msmSec := gpusim.CPUECOpSeconds(cpu, spec, 254, proofMSMOps(m))
	return Breakdown{
		MSM:   msmSec,
		NTT:   msmSec * nttFraction / msmFraction,
		Other: msmSec * otherFraction / msmFraction,
	}
}

// NTTGPUSpeedup is the paper's measured single-GPU NTT speedup (§5.1.1:
// "898× for NTT", the Sppark implementation).
const NTTGPUSpeedup = 898.0

// DistMSMProver models the paper's accelerated configuration for m
// constraints: the MSM stage on nGPU simulated A100s via DistMSM, NTT on
// a single GPU, the remaining stages on the CPU.
func DistMSMProver(m, nGPU int) (Breakdown, error) {
	c, err := curve.ByName("BN254")
	if err != nil {
		return Breakdown{}, err
	}
	cl, err := gpusim.NewCluster(gpusim.A100(), nGPU)
	if err != nil {
		return Breakdown{}, err
	}
	// 4 G1 MSMs of size m plus the G2 MSM at ~3× G1 cost.
	res, err := core.Analytic(c, cl, m, core.Options{})
	if err != nil {
		return Breakdown{}, err
	}
	msmSec := res.Cost.Total() * (4 + 3)

	cpu := LibsnarkProver(m)
	return Breakdown{
		MSM:   msmSec,
		NTT:   cpu.NTT / NTTGPUSpeedup,
		Other: cpu.Other, // stays on the CPU (§5.1.1)
	}, nil
}

// AllGPUProjection models the paper's §5.1.1 hypothetical in which the
// "others" stage is also GPU-accelerated ("similar speedups are expected
// for these operations"): on a single GPU the distribution becomes
// ~78.9 / 17.1 / 3.92 %, and accelerating only the MSM across nGPU
// devices shifts it to ~38.1 / 50.4 / 11.5 % at 8 GPUs — NTT becomes the
// bottleneck, the paper's argument for future multi-GPU NTT work.
func AllGPUProjection(m, nGPU int) (Breakdown, error) {
	cpu := LibsnarkProver(m)
	// Single-GPU speedups of §5.1.1: 871x for MSM, 898x for NTT; others
	// assumed to match NTT's class.
	single := Breakdown{
		MSM:   cpu.MSM / 871,
		NTT:   cpu.NTT / NTTGPUSpeedup,
		Other: cpu.Other / NTTGPUSpeedup,
	}
	if nGPU <= 1 {
		return single, nil
	}
	c, err := curve.ByName("BN254")
	if err != nil {
		return Breakdown{}, err
	}
	cl1, err := gpusim.NewCluster(gpusim.A100(), 1)
	if err != nil {
		return Breakdown{}, err
	}
	clN, err := gpusim.NewCluster(gpusim.A100(), nGPU)
	if err != nil {
		return Breakdown{}, err
	}
	r1, err := core.Analytic(c, cl1, m, core.Options{})
	if err != nil {
		return Breakdown{}, err
	}
	rN, err := core.Analytic(c, clN, m, core.Options{})
	if err != nil {
		return Breakdown{}, err
	}
	single.MSM *= rN.Cost.Total() / r1.Cost.Total() // DistMSM's own scaling
	return single, nil
}

// FutureProjection models the paper's closing §5.1.1 remark — "this
// analysis still underestimates the potential speedup, as it does not
// account for the possibility that NTT and others could also benefit
// from multi-GPU acceleration" — by distributing the NTT with the
// four-step schedule (internal/ntt) and scaling "others" like the NTT.
func FutureProjection(m, nGPU int) (Breakdown, error) {
	base, err := AllGPUProjection(m, nGPU)
	if err != nil {
		return Breakdown{}, err
	}
	if nGPU <= 1 {
		return base, nil
	}
	cl1, err := gpusim.NewCluster(gpusim.A100(), 1)
	if err != nil {
		return Breakdown{}, err
	}
	clN, err := gpusim.NewCluster(gpusim.A100(), nGPU)
	if err != nil {
		return Breakdown{}, err
	}
	// Domain size: next power of two above the constraint count; ~7
	// transforms per proof, but the ratio is all that matters here.
	n := 1
	for n < m {
		n <<= 1
	}
	scale := ntt.MultiGPUNTTSeconds(clN, n, 254) / ntt.MultiGPUNTTSeconds(cl1, n, 254)
	base.NTT *= scale
	base.Other *= scale
	return base, nil
}

// ProofPipelineEstimate models a proving service generating `proofs`
// consecutive proofs of m constraints on nGPU devices, with the MSMs
// software-pipelined per §3.2.3 (the CPU bucket-reduce of one MSM hides
// behind the GPU phases of the next). Returns (pipelined, serial)
// end-to-end seconds; the gap is the pipelining head-room.
func ProofPipelineEstimate(m, nGPU, proofs int) (pipelined, serial float64, err error) {
	c, err := curve.ByName("BN254")
	if err != nil {
		return 0, 0, err
	}
	cl, err := gpusim.NewCluster(gpusim.A100(), nGPU)
	if err != nil {
		return 0, 0, err
	}
	plan, err := core.BuildPlan(c, cl, m, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	const msmsPerProof = 7 // 4 G1 MSMs + the G2 MSM at ~3x G1 (as in DistMSMProver)
	total := proofs * msmsPerProof
	pipe, err := plan.EstimatePipeline(total)
	if err != nil {
		return 0, 0, err
	}
	single := plan.EstimateCost()
	nonMSM := LibsnarkProver(m).NTT/NTTGPUSpeedup + LibsnarkProver(m).Other
	serialMSM := float64(total) * (single.Scatter + single.BucketSum + single.Transfer +
		single.BucketReduce + single.WindowReduce)
	return pipe.Total() + float64(proofs)*nonMSM, serialMSM + float64(proofs)*nonMSM, nil
}
