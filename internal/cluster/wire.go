// Package cluster is the multi-node tier of the proving system: a
// coordinator that fronts several provd worker nodes and lifts the
// per-GPU scheduler's retry/steal/breaker machinery up one level, to
// whole nodes.
//
// The per-GPU layer (internal/core + internal/gpusim) already absorbs
// device loss, transient kernel failures, stragglers and corrupted
// partial sums *inside* one process. This package absorbs the failure
// modes a single process cannot: the whole node crashing, the network
// partitioning it away, the node silently slowing down, or the node
// returning a corrupted proof. The machinery mirrors the GPU layer
// deliberately —
//
//   - heartbeat leases stand in for the scheduler's liveness knowledge
//     of its worker goroutines: a node that misses its lease is marked
//     lost and its in-flight jobs are re-dispatched to survivors, the
//     node-level analogue of shard reassignment after device loss;
//   - a per-node circuit breaker (Closed → Open → HalfOpen probe,
//     mirroring internal/gpusim/health.go) fed by dispatch failures and
//     timeouts quarantines a sick node instead of rediscovering it on
//     every job;
//   - hedged dispatch re-issues a job to a second node once the first
//     has been out past an EWMA latency multiple — the node-level
//     analogue of the scheduler's straggler speculation, first result
//     wins, loser cancelled;
//   - every remote proof is verified before it is accepted, so a
//     corrupted response costs one redispatch, never correctness;
//   - when every remote node is lost or quarantined the coordinator
//     degrades to local in-process proving, the analogue of the
//     engine's serial fallback when every GPU dies.
//
// Node faults are injectable and deterministic (see faults.go), so the
// failover paths are tested exactly the way the shard paths are.
package cluster

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Typed sentinels of the cluster API; all match with errors.Is.
var (
	// ErrBadMessage rejects a malformed or out-of-bounds wire message.
	ErrBadMessage = errors.New("cluster: bad message")
	// ErrUnknownNode reports an operation against a node ID the
	// coordinator has never seen (or has already forgotten).
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrTooManyNodes rejects a registration beyond Config.MaxNodes —
	// the node table is bounded so hostile or buggy registrants cannot
	// grow coordinator state without limit.
	ErrTooManyNodes = errors.New("cluster: node table full")
	// ErrNoNodes reports that no worker node was available to dispatch
	// to and no local fallback was configured.
	ErrNoNodes = errors.New("cluster: no dispatchable nodes")
	// ErrCorruptProof reports a remote proof that failed the
	// coordinator's verification — the corrupted-response fault class.
	ErrCorruptProof = errors.New("cluster: remote proof failed verification")
	// ErrShuttingDown rejects operations after Close began.
	ErrShuttingDown = errors.New("cluster: coordinator shutting down")
	// ErrStaleLease reports a heartbeat whose sequence number ran
	// backwards — a delayed duplicate, never a lease renewal.
	ErrStaleLease = errors.New("cluster: stale heartbeat")
)

// Wire-format bounds. Every inbound message is held to these before it
// touches coordinator state; FuzzClusterWire holds the parsers to
// rejecting anything beyond them without panicking.
const (
	// maxWireBody caps any single wire message body, except dispatch
	// responses (which carry a proof and get maxDispatchRespBody).
	maxWireBody = 1 << 16
	// maxNodeID bounds the node-identifier length.
	maxNodeID = 64
	// maxNodeAddr bounds the advertised dispatch address length.
	maxNodeAddr = 256
	// maxNodeCircuits bounds the circuit list a node may advertise.
	maxNodeCircuits = 64
	// maxCircuitName mirrors the service's wire bound on circuit names.
	maxCircuitName = 64
	// maxNodeWorkers bounds the advertised worker-pool size.
	maxNodeWorkers = 1 << 12
	// maxProofHex bounds the proof field of a dispatch response (hex
	// characters); far above any real proof, far below a memory bomb.
	maxProofHex = 1 << 20
	// maxDispatchRespBody caps a dispatch-response body: a maxProofHex
	// proof plus room for the JSON framing. It must exceed maxProofHex
	// or the body cap would make the proof bound unreachable and every
	// proof above ~maxWireBody/2 would fail to transit.
	maxDispatchRespBody = maxProofHex + 1<<10
	// MaxDispatchTimeout caps the per-job deadline accepted on the wire,
	// mirroring the service's cap.
	MaxDispatchTimeout = 10 * time.Minute
)

// RegisterRequest announces a worker node to the coordinator: its
// identity, the address the coordinator dispatches to, the circuits it
// can prove and its worker-pool size.
type RegisterRequest struct {
	NodeID   string   `json:"node_id"`
	Addr     string   `json:"addr"`
	Circuits []string `json:"circuits,omitempty"`
	Workers  int      `json:"workers,omitempty"`
}

// RegisterResponse grants the node its heartbeat lease: the node is
// considered live for LeaseMS after every accepted heartbeat and should
// heartbeat every HeartbeatMS.
type RegisterResponse struct {
	LeaseMS     int64 `json:"lease_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest renews a node's lease and reports its load. Seq must
// be monotone per node; a heartbeat whose Seq runs backwards is a
// delayed duplicate and never renews the lease.
type HeartbeatRequest struct {
	NodeID   string `json:"node_id"`
	Seq      uint64 `json:"seq"`
	Queued   int    `json:"queued"`
	InFlight int    `json:"in_flight"`
}

// HeartbeatResponse acknowledges a heartbeat. Reregister tells the node
// the coordinator does not know it (it restarted, or the node's lease
// expired long enough ago to be forgotten) and it must register again.
type HeartbeatResponse struct {
	OK         bool `json:"ok"`
	Reregister bool `json:"reregister,omitempty"`
}

// DeregisterRequest announces a graceful drain: the node stops
// receiving new dispatches but its in-flight jobs are left to finish
// (unlike a lease expiry, which cancels and re-dispatches them).
type DeregisterRequest struct {
	NodeID string `json:"node_id"`
}

// DispatchRequest is one proof job sent coordinator → worker.
type DispatchRequest struct {
	JobID     uint64 `json:"job_id"`
	Circuit   string `json:"circuit"`
	Seed      int64  `json:"seed"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// Timeout converts the wire deadline.
func (r DispatchRequest) Timeout() time.Duration {
	return time.Duration(r.TimeoutMS) * time.Millisecond
}

// DispatchResponse is the worker's answer: the marshalled proof in hex,
// or a terminal error string.
type DispatchResponse struct {
	JobID uint64 `json:"job_id"`
	Proof string `json:"proof,omitempty"`
	Error string `json:"error,omitempty"`
}

// ProveRequest is the coordinator's client-facing job request — the
// same shape the single-node service accepts, so clients are oblivious
// to whether they talk to one provd or a cluster.
type ProveRequest struct {
	Circuit string
	Seed    int64
	// Timeout is the end-to-end deadline measured from submission; 0
	// uses the coordinator default.
	Timeout time.Duration
}

// proveRequestWire is the POST /v1/prove body.
type proveRequestWire struct {
	Circuit   string `json:"circuit"`
	Seed      int64  `json:"seed"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func validateCircuitName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: missing circuit name", ErrBadMessage)
	}
	if len(name) > maxCircuitName {
		return fmt.Errorf("%w: circuit name longer than %d bytes", ErrBadMessage, maxCircuitName)
	}
	for _, r := range name {
		if r < 0x21 || r > 0x7E {
			return fmt.Errorf("%w: circuit name contains non-printable or space character %q", ErrBadMessage, r)
		}
	}
	return nil
}

func validateNodeID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: missing node_id", ErrBadMessage)
	}
	if len(id) > maxNodeID {
		return fmt.Errorf("%w: node_id longer than %d bytes", ErrBadMessage, maxNodeID)
	}
	for _, r := range id {
		if r < 0x21 || r > 0x7E {
			return fmt.Errorf("%w: node_id contains non-printable or space character %q", ErrBadMessage, r)
		}
	}
	return nil
}

func unmarshalWireCapped(body []byte, limit int, v any) error {
	if len(body) > limit {
		return fmt.Errorf("%w: body of %d bytes above the %d cap", ErrBadMessage, len(body), limit)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return nil
}

func unmarshalWire(body []byte, v any) error {
	return unmarshalWireCapped(body, maxWireBody, v)
}

// ParseRegisterRequest decodes and validates a registration message. It
// is strict — oversized or non-printable identifiers, absurd worker
// counts and oversized circuit lists are all rejected with errors
// wrapping ErrBadMessage — and never panics on any input.
func ParseRegisterRequest(body []byte) (RegisterRequest, error) {
	var w RegisterRequest
	if err := unmarshalWire(body, &w); err != nil {
		return RegisterRequest{}, err
	}
	if err := validateNodeID(w.NodeID); err != nil {
		return RegisterRequest{}, err
	}
	if w.Addr == "" {
		return RegisterRequest{}, fmt.Errorf("%w: missing addr", ErrBadMessage)
	}
	if len(w.Addr) > maxNodeAddr {
		return RegisterRequest{}, fmt.Errorf("%w: addr longer than %d bytes", ErrBadMessage, maxNodeAddr)
	}
	if len(w.Circuits) > maxNodeCircuits {
		return RegisterRequest{}, fmt.Errorf("%w: %d circuits above the %d cap", ErrBadMessage, len(w.Circuits), maxNodeCircuits)
	}
	for _, c := range w.Circuits {
		if err := validateCircuitName(c); err != nil {
			return RegisterRequest{}, err
		}
	}
	if w.Workers < 0 || w.Workers > maxNodeWorkers {
		return RegisterRequest{}, fmt.Errorf("%w: workers %d outside [0, %d]", ErrBadMessage, w.Workers, maxNodeWorkers)
	}
	return w, nil
}

// ParseHeartbeatRequest decodes and validates a heartbeat message.
func ParseHeartbeatRequest(body []byte) (HeartbeatRequest, error) {
	var w HeartbeatRequest
	if err := unmarshalWire(body, &w); err != nil {
		return HeartbeatRequest{}, err
	}
	if err := validateNodeID(w.NodeID); err != nil {
		return HeartbeatRequest{}, err
	}
	if w.Queued < 0 || w.InFlight < 0 {
		return HeartbeatRequest{}, fmt.Errorf("%w: negative load figures", ErrBadMessage)
	}
	return w, nil
}

// ParseDeregisterRequest decodes and validates a drain announcement.
func ParseDeregisterRequest(body []byte) (DeregisterRequest, error) {
	var w DeregisterRequest
	if err := unmarshalWire(body, &w); err != nil {
		return DeregisterRequest{}, err
	}
	if err := validateNodeID(w.NodeID); err != nil {
		return DeregisterRequest{}, err
	}
	return w, nil
}

// ParseDispatchRequest decodes and validates a coordinator → worker job.
func ParseDispatchRequest(body []byte) (DispatchRequest, error) {
	var w DispatchRequest
	if err := unmarshalWire(body, &w); err != nil {
		return DispatchRequest{}, err
	}
	if err := validateCircuitName(w.Circuit); err != nil {
		return DispatchRequest{}, err
	}
	if w.TimeoutMS < 0 {
		return DispatchRequest{}, fmt.Errorf("%w: negative timeout_ms", ErrBadMessage)
	}
	if w.Timeout() > MaxDispatchTimeout {
		return DispatchRequest{}, fmt.Errorf("%w: timeout_ms above the %v cap", ErrBadMessage, MaxDispatchTimeout)
	}
	return w, nil
}

// ParseDispatchResponse decodes and validates a worker's answer,
// returning the decoded proof bytes on success. A response that carries
// both a proof and an error, or neither, is malformed.
func ParseDispatchResponse(body []byte) (DispatchResponse, []byte, error) {
	var w DispatchResponse
	if err := unmarshalWireCapped(body, maxDispatchRespBody, &w); err != nil {
		return DispatchResponse{}, nil, err
	}
	if w.Error != "" {
		if w.Proof != "" {
			return DispatchResponse{}, nil, fmt.Errorf("%w: response carries both proof and error", ErrBadMessage)
		}
		return w, nil, nil
	}
	if w.Proof == "" {
		return DispatchResponse{}, nil, fmt.Errorf("%w: response carries neither proof nor error", ErrBadMessage)
	}
	if len(w.Proof) > maxProofHex {
		return DispatchResponse{}, nil, fmt.Errorf("%w: proof of %d hex chars above the %d cap", ErrBadMessage, len(w.Proof), maxProofHex)
	}
	proof, err := hex.DecodeString(w.Proof)
	if err != nil {
		return DispatchResponse{}, nil, fmt.Errorf("%w: proof is not hex: %v", ErrBadMessage, err)
	}
	return w, proof, nil
}

// ParseProveRequest decodes and validates a client job request against
// the coordinator (same shape as the single-node service's /v1/prove).
func ParseProveRequest(body []byte) (ProveRequest, error) {
	var w proveRequestWire
	if err := unmarshalWire(body, &w); err != nil {
		return ProveRequest{}, err
	}
	if err := validateCircuitName(w.Circuit); err != nil {
		return ProveRequest{}, err
	}
	if w.TimeoutMS < 0 {
		return ProveRequest{}, fmt.Errorf("%w: negative timeout_ms", ErrBadMessage)
	}
	timeout := time.Duration(w.TimeoutMS) * time.Millisecond
	if timeout > MaxDispatchTimeout {
		return ProveRequest{}, fmt.Errorf("%w: timeout_ms above the %v cap", ErrBadMessage, MaxDispatchTimeout)
	}
	return ProveRequest{Circuit: w.Circuit, Seed: w.Seed, Timeout: timeout}, nil
}
