// Package outsource implements a constant-size verifiable-outsourcing
// check for multi-scalar multiplication in the style of 2G2T (PAPERS.md,
// arXiv 2602.23464): a weak client dispatches an MSM instance to an
// untrusted worker and accepts the claimed result after a number of
// group operations that is independent of the instance size — no
// recomputation.
//
// # Protocol
//
// The client wants Q = Σ xᵢ·Pᵢ over n points. Alongside the real
// instance x it derives one secret challenge instance
//
//	yᵢ = α·xᵢ + ρᵢ
//
// where α is a fresh secret λ-bit scalar and ρ is a sparse secret mask:
// s = MaskTerms uniformly random indices carrying fresh λ-bit values,
// zero elsewhere. The arithmetic is over the integers, so the group
// identity
//
//	MSM(P, y) = α·MSM(P, x) + Σⱼ ρ_{mⱼ}·P_{mⱼ}
//
// holds for any points — no prime-order-subgroup assumption, which
// matters because sampled bases (curve.SamplePoints) are not cofactor
// cleared. The worker returns claims R ≈ MSM(P, x) and T ≈ MSM(P, y);
// the client accepts R iff
//
//	T == α·R + Σⱼ ρ_{mⱼ}·P_{mⱼ}
//
// which costs one λ-bit scalar multiplication, s λ-bit scalar
// multiplications and s+1 additions — constant in n. Deriving y costs
// n integer multiply-adds, but those are scalar-field operations, three
// orders of magnitude cheaper than the ~n/log n group operations the
// MSM itself (or a recompute-based check) needs.
//
// # Soundness and trust model
//
// An additive corruption (Δ_R, Δ_T) chosen without knowledge of the
// client's secrets passes only if Δ_T = α·Δ_R, i.e. only by guessing
// the λ-bit α: escape probability 2^-λ. A lazy worker that skips the
// same subset S of indices in both instances satisfies Δ_T = α·Δ_R
// automatically except for the mask terms it skipped, so it is caught
// unless S misses all s mask indices — probability ~(1-|S|/n)^s, which
// makes skipping any economically meaningful fraction of the work
// detectable with overwhelming probability.
//
// Two caveats, stated here because they bound the model rather than the
// implementation: (1) a single adaptive adversary holding BOTH
// instances can recover α and the mask support by ratio analysis
// (yᵢ/xᵢ is constant off-support), so the cluster coordinator dispatches
// the real and challenge instances to distinct nodes whenever two are
// alive — soundness against adaptive workers then rests on those nodes
// not colluding, while oblivious faults (bit flips, truncation, crashed
// kernels, stale buffers) are caught regardless of placement; (2)
// integer blinding makes challenge scalars up to λ bits wider than real
// ones, so the wire layer pads both instance kinds to the same width to
// keep them indistinguishable at the framing level.
package outsource

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

// DefaultLambda is the default soundness parameter: the bit width of
// the secret scale α and of the mask values. Escape probability for an
// oblivious corruption is 2^-λ.
const DefaultLambda = 64

// DefaultMaskTerms is the default sparse-mask size s. A worker that
// consistently skips a fraction f of the indices escapes with
// probability ~(1-f)^s.
const DefaultMaskTerms = 16

// ErrBadParams reports an invalid protocol configuration.
var ErrBadParams = errors.New("outsource: invalid parameters")

// Params configures the check.
type Params struct {
	// Lambda is the soundness parameter λ in bits: the width of the
	// secret scale and the mask values. 0 means DefaultLambda; the valid
	// range is [8, 256].
	Lambda int
	// MaskTerms is the sparse-mask size s. 0 means DefaultMaskTerms
	// (clamped to the instance size).
	MaskTerms int
}

// fill applies defaults and validates, clamping MaskTerms to n.
func (p Params) fill(n int) (Params, error) {
	if p.Lambda == 0 {
		p.Lambda = DefaultLambda
	}
	if p.MaskTerms == 0 {
		p.MaskTerms = DefaultMaskTerms
	}
	if p.Lambda < 8 || p.Lambda > 256 {
		return p, fmt.Errorf("%w: Lambda %d outside [8, 256]", ErrBadParams, p.Lambda)
	}
	if p.MaskTerms < 1 {
		return p, fmt.Errorf("%w: MaskTerms %d < 1", ErrBadParams, p.MaskTerms)
	}
	if p.MaskTerms > n {
		p.MaskTerms = n
	}
	return p, nil
}

// Check is the client-side secret state for one outsourced MSM
// instance: the scale α, the sparse mask, and the derived challenge
// scalar vector. It retains copies of the s masked base points (not the
// whole table), so a Check stays O(s + n scalars) regardless of how the
// caller stores its bases.
type Check struct {
	c      *curve.Curve
	params Params

	alpha    *big.Int
	maskIdx  []int
	maskVal  []*big.Int
	maskPts  []curve.PointAffine
	chal     []bigint.Nat
	chalBits int
}

// NewCheck derives the secret challenge instance for scalars over
// points. rnd supplies the secret randomness: crypto/rand.Reader in
// production, NewSeededReader in deterministic tests and simulations.
// points and scalars must have equal nonzero length.
func NewCheck(c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, p Params, rnd io.Reader) (*Check, error) {
	n := len(scalars)
	if n == 0 || len(points) != n {
		return nil, fmt.Errorf("%w: %d points, %d scalars", ErrBadParams, len(points), n)
	}
	p, err := p.fill(n)
	if err != nil {
		return nil, err
	}
	ck := &Check{c: c, params: p}
	if ck.alpha, err = randScalar(rnd, p.Lambda); err != nil {
		return nil, err
	}
	if ck.maskIdx, err = randIndices(rnd, n, p.MaskTerms); err != nil {
		return nil, err
	}
	ck.maskVal = make([]*big.Int, p.MaskTerms)
	ck.maskPts = make([]curve.PointAffine, p.MaskTerms)
	for j, idx := range ck.maskIdx {
		if ck.maskVal[j], err = randScalar(rnd, p.Lambda); err != nil {
			return nil, err
		}
		ck.maskPts[j] = clonePoint(points[idx])
	}

	// Derive y = α·x + ρ over ℤ, padded to one uniform width.
	maxBits := c.ScalarBits
	for _, x := range scalars {
		if b := x.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	ck.chalBits = maxBits + p.Lambda + 1
	width := (ck.chalBits + 63) / 64
	ck.chal = make([]bigint.Nat, n)
	rho := make(map[int]*big.Int, p.MaskTerms)
	for j, idx := range ck.maskIdx {
		rho[idx] = ck.maskVal[j]
	}
	v := new(big.Int)
	for i, x := range scalars {
		v.Mul(x.ToBig(), ck.alpha)
		if r, ok := rho[i]; ok {
			v.Add(v, r)
		}
		ck.chal[i] = bigint.FromBig(v, width)
	}
	return ck, nil
}

// Challenge returns the challenge scalar vector y to dispatch alongside
// the real instance. All entries share one width of ChallengeBits bits.
func (ck *Check) Challenge() []bigint.Nat { return ck.chal }

// ChallengeBits is the uniform bit width of the challenge scalars —
// also the width real-instance scalars should be padded to on the wire
// so the two instance kinds frame identically.
func (ck *Check) ChallengeBits() int { return ck.chalBits }

// Params returns the (default-filled) parameters of the check.
func (ck *Check) Params() Params { return ck.params }

// Verify accepts or rejects the worker claims: claimed ≈ MSM(P, x) and
// challenge ≈ MSM(P, y). It performs 1+s short scalar multiplications
// and s+1 additions — independent of the instance size. nil claims are
// rejected.
func (ck *Check) Verify(claimed, challenge *curve.PointXYZZ) bool {
	if claimed == nil || challenge == nil {
		return false
	}
	a := ck.c.NewAdder()
	want := xyzzScalarMul(ck.c, a, claimed, ck.alpha)
	width := (ck.params.Lambda + 63) / 64
	for j := range ck.maskPts {
		a.Add(want, a.ScalarMul(&ck.maskPts[j], bigint.FromBig(ck.maskVal[j], width)))
	}
	return ck.c.EqualXYZZ(challenge, want)
}

// xyzzScalarMul is double-and-add of a projective point by a short
// scalar (the Adder's ScalarMul takes affine inputs, but worker claims
// arrive projective).
func xyzzScalarMul(c *curve.Curve, a *curve.Adder, p *curve.PointXYZZ, k *big.Int) *curve.PointXYZZ {
	out := c.NewXYZZ()
	for i := k.BitLen() - 1; i >= 0; i-- {
		a.Double(out)
		if k.Bit(i) == 1 {
			a.Add(out, p)
		}
	}
	return out
}

// clonePoint deep-copies an affine point (Elements are slices).
func clonePoint(p curve.PointAffine) curve.PointAffine {
	if p.Inf {
		return curve.PointAffine{Inf: true}
	}
	return curve.PointAffine{X: p.X.Clone(), Y: p.Y.Clone()}
}

// randInt draws a uniform integer in [0, max).
func randInt(rnd io.Reader, max *big.Int) (*big.Int, error) {
	v, err := rand.Int(rnd, max)
	if err != nil {
		return nil, fmt.Errorf("outsource: drawing randomness: %w", err)
	}
	return v, nil
}

// randScalar draws a uniform nonzero integer of at most bits bits.
func randScalar(rnd io.Reader, bits int) (*big.Int, error) {
	max := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	for {
		v, err := randInt(rnd, max)
		if err != nil {
			return nil, err
		}
		if v.Sign() != 0 {
			return v, nil
		}
	}
}

// randIndices draws s distinct uniform indices in [0, n).
func randIndices(rnd io.Reader, n, s int) ([]int, error) {
	seen := make(map[int]bool, s)
	out := make([]int, 0, s)
	bigN := big.NewInt(int64(n))
	for len(out) < s {
		v, err := randInt(rnd, bigN)
		if err != nil {
			return nil, err
		}
		i := int(v.Int64())
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out, nil
}

// NewSeededReader returns a deterministic randomness stream (a SHA-256
// counter generator) for reproducible tests, chaos schedules and the
// simulated engine — production callers pass crypto/rand.Reader. The
// stream is safe for concurrent readers (like crypto/rand.Reader); the
// byte sequence is deterministic in the seed, though its interleaving
// across concurrent readers of course is not.
func NewSeededReader(seed uint64) io.Reader {
	return &seededReader{seed: seed}
}

type seededReader struct {
	mu   sync.Mutex
	seed uint64
	ctr  uint64
	buf  []byte
}

func (r *seededReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.buf) < len(p) {
		var block [16]byte
		binary.LittleEndian.PutUint64(block[:8], r.seed)
		binary.LittleEndian.PutUint64(block[8:], r.ctr)
		r.ctr++
		h := sha256.Sum256(block[:])
		r.buf = append(r.buf, h[:]...)
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}
