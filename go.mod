module distmsm

go 1.22
