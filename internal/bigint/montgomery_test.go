package bigint

import (
	"math/big"
	"math/rand"
	"testing"
)

// test moduli spanning the widths used by the four curves.
var testModuli = []string{
	// BN254 base field (254 bits, 4 limbs)
	"21888242871839275222246405745257275088696311157297823662689037894645226208583",
	// BLS12-381 base field (381 bits, 6 limbs)
	"4002409555221667393417789825735904156556882819939007885332058136124031650490837864442687629129015664037894272559787",
	// BN254 scalar field (254 bits)
	"21888242871839275222246405745257275088548364400416034343698204186575808495617",
	// a small odd modulus
	"1000003",
	// 753-bit-class width (12 limbs): 2^752 + 297 is not prime but odd; fine for Montgomery.
	"",
}

func init() {
	v := new(big.Int).Lsh(big.NewInt(1), 752)
	v.Add(v, big.NewInt(297))
	testModuli[4] = v.String()
}

func montCtx(t testing.TB, dec string) (*Montgomery, *big.Int) {
	t.Helper()
	n, ok := new(big.Int).SetString(dec, 10)
	if !ok {
		t.Fatalf("bad modulus literal")
	}
	m, err := NewMontgomery(n)
	if err != nil {
		t.Fatal(err)
	}
	return m, n
}

func randResidue(rnd *rand.Rand, n *big.Int, width int) Nat {
	v := new(big.Int).Rand(rnd, n)
	return FromBig(v, width)
}

func TestNewMontgomeryRejectsEven(t *testing.T) {
	if _, err := NewMontgomery(big.NewInt(10)); err == nil {
		t.Fatal("expected error for even modulus")
	}
	if _, err := NewMontgomery(big.NewInt(-3)); err == nil {
		t.Fatal("expected error for negative modulus")
	}
}

func TestNPrime0(t *testing.T) {
	for _, dec := range testModuli {
		m, n := montCtx(t, dec)
		// n * (-NPrime0) ≡ 1 mod 2^64
		got := m.N[0] * (-m.NPrime0)
		if got != 1 {
			t.Errorf("modulus %s: N'0 wrong: n0*(-n'0) = %d", n, got)
		}
	}
}

func TestMontgomeryVariantsMatchBig(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, dec := range testModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		rInv := new(big.Int).Lsh(big.NewInt(1), uint(64*w))
		rInv.ModInverse(rInv, n)
		for iter := 0; iter < 100; iter++ {
			x := randResidue(rnd, n, w)
			y := randResidue(rnd, n, w)
			want := new(big.Int).Mul(x.ToBig(), y.ToBig())
			want.Mul(want, rInv).Mod(want, n)

			for name, mul := range map[string]func(z, a, b Nat){
				"SOS": m.MulSOS, "CIOS": m.MulCIOS, "FIOS": m.MulFIOS,
			} {
				z := New(w)
				mul(z, x, y)
				if z.ToBig().Cmp(want) != 0 {
					t.Fatalf("modulus %s %s: %v * %v = %v, want %v", n, name, x, y, z, want)
				}
			}
		}
	}
}

func TestMontgomeryRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for _, dec := range testModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		for iter := 0; iter < 50; iter++ {
			x := randResidue(rnd, n, w)
			mont, back := New(w), New(w)
			m.ToMont(mont, x)
			m.FromMont(back, mont)
			if !back.Equal(x) {
				t.Fatalf("modulus %s: Mont round trip failed for %v", n, x)
			}
		}
	}
}

func TestMontgomeryOne(t *testing.T) {
	for _, dec := range testModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		// One is the Montgomery form of 1.
		back := New(w)
		m.FromMont(back, m.One)
		if back.ToBig().Cmp(big.NewInt(1)) != 0 {
			t.Errorf("modulus %s: One is not R mod N", n)
		}
	}
}

func TestAddSubNegMod(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	for _, dec := range testModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		for iter := 0; iter < 100; iter++ {
			x := randResidue(rnd, n, w)
			y := randResidue(rnd, n, w)
			z := New(w)

			m.AddMod(z, x, y)
			want := new(big.Int).Add(x.ToBig(), y.ToBig())
			want.Mod(want, n)
			if z.ToBig().Cmp(want) != 0 {
				t.Fatalf("AddMod mismatch mod %s", n)
			}

			m.SubMod(z, x, y)
			want.Sub(x.ToBig(), y.ToBig()).Mod(want, n)
			if z.ToBig().Cmp(want) != 0 {
				t.Fatalf("SubMod mismatch mod %s", n)
			}

			m.NegMod(z, x)
			want.Neg(x.ToBig()).Mod(want, n)
			if z.ToBig().Cmp(want) != 0 {
				t.Fatalf("NegMod mismatch mod %s", n)
			}
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	m, n := montCtx(t, testModuli[0])
	w := m.Width()
	zero, one := New(w), New(w)
	one[0] = 1
	nm1 := FromBig(new(big.Int).Sub(n, big.NewInt(1)), w)

	z := New(w)
	m.MulCIOS(z, zero, nm1)
	if !z.IsZero() {
		t.Fatal("0 * x != 0")
	}
	// (n-1)*(n-1)*R^-1 mod n computed three ways must agree.
	z2, z3 := New(w), New(w)
	m.MulCIOS(z, nm1, nm1)
	m.MulSOS(z2, nm1, nm1)
	m.MulFIOS(z3, nm1, nm1)
	if !z.Equal(z2) || !z.Equal(z3) {
		t.Fatal("variants disagree on (n-1)^2")
	}
	if z.Cmp(m.N) >= 0 {
		t.Fatal("result not reduced")
	}
	_ = one
}

func BenchmarkMontgomeryMul(b *testing.B) {
	rnd := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		mod  string
	}{
		{"BN254/4limb", testModuli[0]},
		{"BLS12-381/6limb", testModuli[1]},
		{"753bit/12limb", testModuli[4]},
	} {
		m, n := montCtx(b, tc.mod)
		w := m.Width()
		x := randResidue(rnd, n, w)
		y := randResidue(rnd, n, w)
		z := New(w)
		b.Run(tc.name+"/CIOS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulCIOS(z, x, y)
			}
		})
		b.Run(tc.name+"/SOS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulSOS(z, x, y)
			}
		})
		b.Run(tc.name+"/FIOS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulFIOS(z, x, y)
			}
		})
	}
}

func TestSqrIntoMatchesBig(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	for _, width := range []int{1, 2, 4, 6, 12} {
		for iter := 0; iter < 100; iter++ {
			x := randNat(rnd, width)
			z := New(2 * width)
			SqrInto(z, x)
			want := new(big.Int).Mul(x.ToBig(), x.ToBig())
			if z.ToBig().Cmp(want) != 0 {
				t.Fatalf("width %d: SqrInto mismatch for %v", width, x)
			}
		}
	}
	// edge: all-ones operand maximises carries
	x := New(4)
	for i := range x {
		x[i] = ^uint64(0)
	}
	z := New(8)
	SqrInto(z, x)
	want := new(big.Int).Mul(x.ToBig(), x.ToBig())
	if z.ToBig().Cmp(want) != 0 {
		t.Fatal("SqrInto all-ones mismatch")
	}
}

func TestSquareSOSMatchesMul(t *testing.T) {
	rnd := rand.New(rand.NewSource(32))
	for _, dec := range testModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		for iter := 0; iter < 60; iter++ {
			x := randResidue(rnd, n, w)
			sq, mm := New(w), New(w)
			m.SquareSOS(sq, x)
			m.MulCIOS(mm, x, x)
			if !sq.Equal(mm) {
				t.Fatalf("modulus %s: SquareSOS != MulCIOS for %v", n, x)
			}
		}
		// aliasing: z == x
		x := randResidue(rnd, n, w)
		want := New(w)
		m.MulCIOS(want, x, x)
		m.SquareSOS(x, x)
		if !x.Equal(want) {
			t.Fatalf("modulus %s: aliased SquareSOS wrong", n)
		}
	}
}

func BenchmarkMontgomerySquare(b *testing.B) {
	rnd := rand.New(rand.NewSource(33))
	m, n := montCtx(b, testModuli[1]) // 6-limb BLS12-381
	w := m.Width()
	x := randResidue(rnd, n, w)
	z := New(w)
	b.Run("SquareSOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.SquareSOS(z, x)
		}
	})
	b.Run("MulCIOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulCIOS(z, x, x)
		}
	})
}

// Exercise the allocation-based CIOS fallback for very wide moduli
// (width > the stack fast path's 13 limbs).
func TestMulCIOSLargeWidth(t *testing.T) {
	rnd := rand.New(rand.NewSource(51))
	n := new(big.Int).Lsh(big.NewInt(1), 1000) // 16-limb odd modulus
	n.Add(n, big.NewInt(1219))
	m, err := NewMontgomery(n)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Width()
	if w <= maxLimbs {
		t.Fatalf("modulus too narrow for the fallback path (%d limbs)", w)
	}
	rInv := new(big.Int).Lsh(big.NewInt(1), uint(64*w))
	rInv.ModInverse(rInv, n)
	for iter := 0; iter < 30; iter++ {
		x := randResidue(rnd, n, w)
		y := randResidue(rnd, n, w)
		z := New(w)
		m.MulCIOS(z, x, y)
		want := new(big.Int).Mul(x.ToBig(), y.ToBig())
		want.Mul(want, rInv).Mod(want, n)
		if z.ToBig().Cmp(want) != 0 {
			t.Fatal("wide-modulus CIOS mismatch")
		}
		sq := New(w)
		m.SquareSOS(sq, x)
		m.MulCIOS(z, x, x)
		if !sq.Equal(z) {
			t.Fatal("wide-modulus SquareSOS mismatch")
		}
	}
}
