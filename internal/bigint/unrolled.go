package bigint

import "math/bits"

// Width-specialised, fully-unrolled Montgomery kernels for the 4-limb
// (BN254 Fp/Fr, BLS12-381 Fr) and 6-limb (BLS12-381 Fp) fields that
// dominate the MSM hot paths. The kernels implement the "no-carry" CIOS
// variant (the t[w+1] column provably stays zero when the top modulus
// limb is below 2^63-1, so the whole intermediate fits in w limbs and
// every loop dissolves into straight-line carry chains over registers).
// NewMontgomery selects them once per context via function-pointer
// dispatch; the generic CIOS/SOS/FIOS paths remain the bit-exact
// reference that the differential tests and fuzzers check against.

// unrolledOK reports whether the no-carry unrolled kernels are valid for
// modulus n: the highest limb must be nonzero (full width) and small
// enough that x[i]*y + t + u*N never overflows w+1 limbs.
func unrolledOK(n Nat) bool {
	top := n[len(n)-1]
	return top != 0 && top < (1<<63)-1
}

// madd0 returns the high limb of a*b+c.
func madd0(a, b, c uint64) (hi uint64) {
	var carry, lo uint64
	hi, lo = bits.Mul64(a, b)
	_, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd1 returns a*b+c.
func madd1(a, b, c uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd2 returns a*b+c+d.
func madd2(a, b, c, d uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd3 returns a*b+c+d+e*2^64.
func madd3(a, b, c, d, e uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return
}

// mul4 sets z = x*y*R^-1 mod n (R = 2^256), no-carry CIOS unrolled over
// 4 limbs. Aliasing of z with x or y is fine: z is written only at the end.
func mul4(z, x, y, n *[4]uint64, nprime0 uint64) {
	var t0, t1, t2, t3 uint64
	var c0, c1, c2 uint64

	// round 0
	v := x[0]
	c1, c0 = bits.Mul64(v, y[0])
	u := c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd1(v, y[1], c1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd1(v, y[2], c1)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd1(v, y[3], c1)
	t3, t2 = madd3(u, n[3], c0, c2, c1)

	// round 1
	v = x[1]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	t3, t2 = madd3(u, n[3], c0, c2, c1)

	// round 2
	v = x[2]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	t3, t2 = madd3(u, n[3], c0, c2, c1)

	// round 3
	v = x[3]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	t3, t2 = madd3(u, n[3], c0, c2, c1)

	// z = t - n if t >= n
	r0, b := bits.Sub64(t0, n[0], 0)
	r1, b := bits.Sub64(t1, n[1], b)
	r2, b := bits.Sub64(t2, n[2], b)
	r3, b := bits.Sub64(t3, n[3], b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = r0, r1, r2, r3
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}

// sqr4 sets z = x²·R^-1 mod n: the unrolled triangle+diagonal square
// (6 off-diagonal + 4 diagonal mults instead of 16) followed by an
// unrolled Montgomery reduction of the 8-limb product. z may alias x.
func sqr4(z, x, n *[4]uint64, nprime0 uint64) {
	var p0, p1, p2, p3, p4, p5, p6, p7 uint64
	var hi, lo, c, cc uint64

	// Off-diagonal triangle x[i]*x[j], i < j.
	// row 0: p1..p3, carry into p4
	hi, p1 = bits.Mul64(x[0], x[1])
	c = hi
	hi, lo = bits.Mul64(x[0], x[2])
	p2, cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[0], x[3])
	p3, cc = bits.Add64(lo, c, 0)
	p4 = hi + cc
	// row 1: adds into p3, p4, carry into p5
	hi, lo = bits.Mul64(x[1], x[2])
	p3, cc = bits.Add64(p3, lo, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[1], x[3])
	lo, cc = bits.Add64(lo, p4, 0)
	hi += cc
	p4, cc = bits.Add64(lo, c, 0)
	p5 = hi + cc
	// row 2: adds into p5, carry into p6
	hi, lo = bits.Mul64(x[2], x[3])
	p5, cc = bits.Add64(p5, lo, 0)
	p6 = hi + cc

	// Double the triangle.
	p7 = p6 >> 63
	p6 = p6<<1 | p5>>63
	p5 = p5<<1 | p4>>63
	p4 = p4<<1 | p3>>63
	p3 = p3<<1 | p2>>63
	p2 = p2<<1 | p1>>63
	p1 = p1 << 1

	// Add the diagonal squares.
	hi, p0 = bits.Mul64(x[0], x[0])
	p1, c = bits.Add64(p1, hi, 0)
	hi, lo = bits.Mul64(x[1], x[1])
	p2, c = bits.Add64(p2, lo, c)
	p3, c = bits.Add64(p3, hi, c)
	hi, lo = bits.Mul64(x[2], x[2])
	p4, c = bits.Add64(p4, lo, c)
	p5, c = bits.Add64(p5, hi, c)
	hi, lo = bits.Mul64(x[3], x[3])
	p6, c = bits.Add64(p6, lo, c)
	p7, _ = bits.Add64(p7, hi, c)

	// Montgomery reduction: 4 rounds of u = p[i]*n'0, p += u*n << 64i.
	// With n < 2^255 the final t = p / 2^256 < 2n fits 4 limbs.
	// round 0
	u := p0 * nprime0
	c = madd0(u, n[0], p0)
	c, p1 = madd2(u, n[1], c, p1)
	c, p2 = madd2(u, n[2], c, p2)
	c, p3 = madd2(u, n[3], c, p3)
	p4, cc = bits.Add64(p4, c, 0)
	p5, cc = bits.Add64(p5, 0, cc)
	p6, cc = bits.Add64(p6, 0, cc)
	p7, _ = bits.Add64(p7, 0, cc)
	// round 1
	u = p1 * nprime0
	c = madd0(u, n[0], p1)
	c, p2 = madd2(u, n[1], c, p2)
	c, p3 = madd2(u, n[2], c, p3)
	c, p4 = madd2(u, n[3], c, p4)
	p5, cc = bits.Add64(p5, c, 0)
	p6, cc = bits.Add64(p6, 0, cc)
	p7, _ = bits.Add64(p7, 0, cc)
	// round 2
	u = p2 * nprime0
	c = madd0(u, n[0], p2)
	c, p3 = madd2(u, n[1], c, p3)
	c, p4 = madd2(u, n[2], c, p4)
	c, p5 = madd2(u, n[3], c, p5)
	p6, cc = bits.Add64(p6, c, 0)
	p7, _ = bits.Add64(p7, 0, cc)
	// round 3
	u = p3 * nprime0
	c = madd0(u, n[0], p3)
	c, p4 = madd2(u, n[1], c, p4)
	c, p5 = madd2(u, n[2], c, p5)
	c, p6 = madd2(u, n[3], c, p6)
	p7, _ = bits.Add64(p7, c, 0)

	// z = p[4..7] - n if >= n
	r0, b := bits.Sub64(p4, n[0], 0)
	r1, b := bits.Sub64(p5, n[1], b)
	r2, b := bits.Sub64(p6, n[2], b)
	r3, b := bits.Sub64(p7, n[3], b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = r0, r1, r2, r3
	} else {
		z[0], z[1], z[2], z[3] = p4, p5, p6, p7
	}
}

// add4 sets z = x + y mod n for reduced operands; with n < 2^255 the raw
// sum cannot carry out of 4 limbs.
func add4(z, x, y, n *[4]uint64) {
	t0, c := bits.Add64(x[0], y[0], 0)
	t1, c := bits.Add64(x[1], y[1], c)
	t2, c := bits.Add64(x[2], y[2], c)
	t3, _ := bits.Add64(x[3], y[3], c)
	r0, b := bits.Sub64(t0, n[0], 0)
	r1, b := bits.Sub64(t1, n[1], b)
	r2, b := bits.Sub64(t2, n[2], b)
	r3, b := bits.Sub64(t3, n[3], b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = r0, r1, r2, r3
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}

// sub4 sets z = x - y mod n for reduced operands (adds n back on borrow,
// branch-free).
func sub4(z, x, y, n *[4]uint64) {
	t0, b := bits.Sub64(x[0], y[0], 0)
	t1, b := bits.Sub64(x[1], y[1], b)
	t2, b := bits.Sub64(x[2], y[2], b)
	t3, b := bits.Sub64(x[3], y[3], b)
	mask := -b
	var c uint64
	z[0], c = bits.Add64(t0, n[0]&mask, 0)
	z[1], c = bits.Add64(t1, n[1]&mask, c)
	z[2], c = bits.Add64(t2, n[2]&mask, c)
	z[3], _ = bits.Add64(t3, n[3]&mask, c)
}

// mul6 sets z = x*y*R^-1 mod n (R = 2^384), no-carry CIOS unrolled over
// 6 limbs. z may alias x or y.
func mul6(z, x, y, n *[6]uint64, nprime0 uint64) {
	var t0, t1, t2, t3, t4, t5 uint64
	var c0, c1, c2 uint64

	// round 0
	v := x[0]
	c1, c0 = bits.Mul64(v, y[0])
	u := c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd1(v, y[1], c1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd1(v, y[2], c1)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd1(v, y[3], c1)
	c2, t2 = madd2(u, n[3], c2, c0)
	c1, c0 = madd1(v, y[4], c1)
	c2, t3 = madd2(u, n[4], c2, c0)
	c1, c0 = madd1(v, y[5], c1)
	t5, t4 = madd3(u, n[5], c0, c2, c1)

	// round 1
	v = x[1]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	c2, t2 = madd2(u, n[3], c2, c0)
	c1, c0 = madd2(v, y[4], c1, t4)
	c2, t3 = madd2(u, n[4], c2, c0)
	c1, c0 = madd2(v, y[5], c1, t5)
	t5, t4 = madd3(u, n[5], c0, c2, c1)

	// round 2
	v = x[2]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	c2, t2 = madd2(u, n[3], c2, c0)
	c1, c0 = madd2(v, y[4], c1, t4)
	c2, t3 = madd2(u, n[4], c2, c0)
	c1, c0 = madd2(v, y[5], c1, t5)
	t5, t4 = madd3(u, n[5], c0, c2, c1)

	// round 3
	v = x[3]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	c2, t2 = madd2(u, n[3], c2, c0)
	c1, c0 = madd2(v, y[4], c1, t4)
	c2, t3 = madd2(u, n[4], c2, c0)
	c1, c0 = madd2(v, y[5], c1, t5)
	t5, t4 = madd3(u, n[5], c0, c2, c1)

	// round 4
	v = x[4]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	c2, t2 = madd2(u, n[3], c2, c0)
	c1, c0 = madd2(v, y[4], c1, t4)
	c2, t3 = madd2(u, n[4], c2, c0)
	c1, c0 = madd2(v, y[5], c1, t5)
	t5, t4 = madd3(u, n[5], c0, c2, c1)

	// round 5
	v = x[5]
	c1, c0 = madd1(v, y[0], t0)
	u = c0 * nprime0
	c2 = madd0(u, n[0], c0)
	c1, c0 = madd2(v, y[1], c1, t1)
	c2, t0 = madd2(u, n[1], c2, c0)
	c1, c0 = madd2(v, y[2], c1, t2)
	c2, t1 = madd2(u, n[2], c2, c0)
	c1, c0 = madd2(v, y[3], c1, t3)
	c2, t2 = madd2(u, n[3], c2, c0)
	c1, c0 = madd2(v, y[4], c1, t4)
	c2, t3 = madd2(u, n[4], c2, c0)
	c1, c0 = madd2(v, y[5], c1, t5)
	t5, t4 = madd3(u, n[5], c0, c2, c1)

	// z = t - n if t >= n
	r0, b := bits.Sub64(t0, n[0], 0)
	r1, b := bits.Sub64(t1, n[1], b)
	r2, b := bits.Sub64(t2, n[2], b)
	r3, b := bits.Sub64(t3, n[3], b)
	r4, b := bits.Sub64(t4, n[4], b)
	r5, b := bits.Sub64(t5, n[5], b)
	if b == 0 {
		z[0], z[1], z[2], z[3], z[4], z[5] = r0, r1, r2, r3, r4, r5
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	}
}

// sqr6 sets z = x²·R^-1 mod n: unrolled triangle+diagonal square (15+6
// mults instead of 36) plus an unrolled reduction of the 12-limb product.
// z may alias x.
func sqr6(z, x, n *[6]uint64, nprime0 uint64) {
	var p [12]uint64
	var hi, lo, c, cc uint64

	// Off-diagonal triangle.
	// row 0: x0*x1..x0*x5 into p1..p5, carry into p6
	hi, p[1] = bits.Mul64(x[0], x[1])
	c = hi
	hi, lo = bits.Mul64(x[0], x[2])
	p[2], cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[0], x[3])
	p[3], cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[0], x[4])
	p[4], cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[0], x[5])
	p[5], cc = bits.Add64(lo, c, 0)
	p[6] = hi + cc
	// row 1: x1*x2..x1*x5 into p3..p6, carry into p7
	c = 0
	hi, lo = bits.Mul64(x[1], x[2])
	p[3], cc = bits.Add64(p[3], lo, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[1], x[3])
	lo, cc = bits.Add64(lo, p[4], 0)
	hi += cc
	p[4], cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[1], x[4])
	lo, cc = bits.Add64(lo, p[5], 0)
	hi += cc
	p[5], cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[1], x[5])
	lo, cc = bits.Add64(lo, p[6], 0)
	hi += cc
	p[6], cc = bits.Add64(lo, c, 0)
	p[7] = hi + cc
	// row 2: x2*x3..x2*x5 into p5..p7, carry into p8
	hi, lo = bits.Mul64(x[2], x[3])
	p[5], cc = bits.Add64(p[5], lo, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[2], x[4])
	lo, cc = bits.Add64(lo, p[6], 0)
	hi += cc
	p[6], cc = bits.Add64(lo, c, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[2], x[5])
	lo, cc = bits.Add64(lo, p[7], 0)
	hi += cc
	p[7], cc = bits.Add64(lo, c, 0)
	p[8] = hi + cc
	// row 3: x3*x4, x3*x5 into p7..p8, carry into p9
	hi, lo = bits.Mul64(x[3], x[4])
	p[7], cc = bits.Add64(p[7], lo, 0)
	c = hi + cc
	hi, lo = bits.Mul64(x[3], x[5])
	lo, cc = bits.Add64(lo, p[8], 0)
	hi += cc
	p[8], cc = bits.Add64(lo, c, 0)
	p[9] = hi + cc
	// row 4: x4*x5 into p9, carry into p10
	hi, lo = bits.Mul64(x[4], x[5])
	p[9], cc = bits.Add64(p[9], lo, 0)
	p[10] = hi + cc

	// Double the triangle.
	p[11] = p[10] >> 63
	p[10] = p[10]<<1 | p[9]>>63
	p[9] = p[9]<<1 | p[8]>>63
	p[8] = p[8]<<1 | p[7]>>63
	p[7] = p[7]<<1 | p[6]>>63
	p[6] = p[6]<<1 | p[5]>>63
	p[5] = p[5]<<1 | p[4]>>63
	p[4] = p[4]<<1 | p[3]>>63
	p[3] = p[3]<<1 | p[2]>>63
	p[2] = p[2]<<1 | p[1]>>63
	p[1] = p[1] << 1

	// Add the diagonal squares.
	hi, p[0] = bits.Mul64(x[0], x[0])
	p[1], c = bits.Add64(p[1], hi, 0)
	hi, lo = bits.Mul64(x[1], x[1])
	p[2], c = bits.Add64(p[2], lo, c)
	p[3], c = bits.Add64(p[3], hi, c)
	hi, lo = bits.Mul64(x[2], x[2])
	p[4], c = bits.Add64(p[4], lo, c)
	p[5], c = bits.Add64(p[5], hi, c)
	hi, lo = bits.Mul64(x[3], x[3])
	p[6], c = bits.Add64(p[6], lo, c)
	p[7], c = bits.Add64(p[7], hi, c)
	hi, lo = bits.Mul64(x[4], x[4])
	p[8], c = bits.Add64(p[8], lo, c)
	p[9], c = bits.Add64(p[9], hi, c)
	hi, lo = bits.Mul64(x[5], x[5])
	p[10], c = bits.Add64(p[10], lo, c)
	p[11], _ = bits.Add64(p[11], hi, c)

	// Montgomery reduction, 6 unrolled rounds.
	u := p[0] * nprime0
	c = madd0(u, n[0], p[0])
	c, p[1] = madd2(u, n[1], c, p[1])
	c, p[2] = madd2(u, n[2], c, p[2])
	c, p[3] = madd2(u, n[3], c, p[3])
	c, p[4] = madd2(u, n[4], c, p[4])
	c, p[5] = madd2(u, n[5], c, p[5])
	p[6], cc = bits.Add64(p[6], c, 0)
	p[7], cc = bits.Add64(p[7], 0, cc)
	p[8], cc = bits.Add64(p[8], 0, cc)
	p[9], cc = bits.Add64(p[9], 0, cc)
	p[10], cc = bits.Add64(p[10], 0, cc)
	p[11], _ = bits.Add64(p[11], 0, cc)

	u = p[1] * nprime0
	c = madd0(u, n[0], p[1])
	c, p[2] = madd2(u, n[1], c, p[2])
	c, p[3] = madd2(u, n[2], c, p[3])
	c, p[4] = madd2(u, n[3], c, p[4])
	c, p[5] = madd2(u, n[4], c, p[5])
	c, p[6] = madd2(u, n[5], c, p[6])
	p[7], cc = bits.Add64(p[7], c, 0)
	p[8], cc = bits.Add64(p[8], 0, cc)
	p[9], cc = bits.Add64(p[9], 0, cc)
	p[10], cc = bits.Add64(p[10], 0, cc)
	p[11], _ = bits.Add64(p[11], 0, cc)

	u = p[2] * nprime0
	c = madd0(u, n[0], p[2])
	c, p[3] = madd2(u, n[1], c, p[3])
	c, p[4] = madd2(u, n[2], c, p[4])
	c, p[5] = madd2(u, n[3], c, p[5])
	c, p[6] = madd2(u, n[4], c, p[6])
	c, p[7] = madd2(u, n[5], c, p[7])
	p[8], cc = bits.Add64(p[8], c, 0)
	p[9], cc = bits.Add64(p[9], 0, cc)
	p[10], cc = bits.Add64(p[10], 0, cc)
	p[11], _ = bits.Add64(p[11], 0, cc)

	u = p[3] * nprime0
	c = madd0(u, n[0], p[3])
	c, p[4] = madd2(u, n[1], c, p[4])
	c, p[5] = madd2(u, n[2], c, p[5])
	c, p[6] = madd2(u, n[3], c, p[6])
	c, p[7] = madd2(u, n[4], c, p[7])
	c, p[8] = madd2(u, n[5], c, p[8])
	p[9], cc = bits.Add64(p[9], c, 0)
	p[10], cc = bits.Add64(p[10], 0, cc)
	p[11], _ = bits.Add64(p[11], 0, cc)

	u = p[4] * nprime0
	c = madd0(u, n[0], p[4])
	c, p[5] = madd2(u, n[1], c, p[5])
	c, p[6] = madd2(u, n[2], c, p[6])
	c, p[7] = madd2(u, n[3], c, p[7])
	c, p[8] = madd2(u, n[4], c, p[8])
	c, p[9] = madd2(u, n[5], c, p[9])
	p[10], cc = bits.Add64(p[10], c, 0)
	p[11], _ = bits.Add64(p[11], 0, cc)

	u = p[5] * nprime0
	c = madd0(u, n[0], p[5])
	c, p[6] = madd2(u, n[1], c, p[6])
	c, p[7] = madd2(u, n[2], c, p[7])
	c, p[8] = madd2(u, n[3], c, p[8])
	c, p[9] = madd2(u, n[4], c, p[9])
	c, p[10] = madd2(u, n[5], c, p[10])
	p[11], _ = bits.Add64(p[11], c, 0)

	// z = p[6..11] - n if >= n
	r0, b := bits.Sub64(p[6], n[0], 0)
	r1, b := bits.Sub64(p[7], n[1], b)
	r2, b := bits.Sub64(p[8], n[2], b)
	r3, b := bits.Sub64(p[9], n[3], b)
	r4, b := bits.Sub64(p[10], n[4], b)
	r5, b := bits.Sub64(p[11], n[5], b)
	if b == 0 {
		z[0], z[1], z[2], z[3], z[4], z[5] = r0, r1, r2, r3, r4, r5
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = p[6], p[7], p[8], p[9], p[10], p[11]
	}
}

// add6 sets z = x + y mod n for reduced operands.
func add6(z, x, y, n *[6]uint64) {
	t0, c := bits.Add64(x[0], y[0], 0)
	t1, c := bits.Add64(x[1], y[1], c)
	t2, c := bits.Add64(x[2], y[2], c)
	t3, c := bits.Add64(x[3], y[3], c)
	t4, c := bits.Add64(x[4], y[4], c)
	t5, _ := bits.Add64(x[5], y[5], c)
	r0, b := bits.Sub64(t0, n[0], 0)
	r1, b := bits.Sub64(t1, n[1], b)
	r2, b := bits.Sub64(t2, n[2], b)
	r3, b := bits.Sub64(t3, n[3], b)
	r4, b := bits.Sub64(t4, n[4], b)
	r5, b := bits.Sub64(t5, n[5], b)
	if b == 0 {
		z[0], z[1], z[2], z[3], z[4], z[5] = r0, r1, r2, r3, r4, r5
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	}
}

// sub6 sets z = x - y mod n for reduced operands.
func sub6(z, x, y, n *[6]uint64) {
	t0, b := bits.Sub64(x[0], y[0], 0)
	t1, b := bits.Sub64(x[1], y[1], b)
	t2, b := bits.Sub64(x[2], y[2], b)
	t3, b := bits.Sub64(x[3], y[3], b)
	t4, b := bits.Sub64(x[4], y[4], b)
	t5, b := bits.Sub64(x[5], y[5], b)
	mask := -b
	var c uint64
	z[0], c = bits.Add64(t0, n[0]&mask, 0)
	z[1], c = bits.Add64(t1, n[1]&mask, c)
	z[2], c = bits.Add64(t2, n[2]&mask, c)
	z[3], c = bits.Add64(t3, n[3]&mask, c)
	z[4], c = bits.Add64(t4, n[4]&mask, c)
	z[5], _ = bits.Add64(t5, n[5]&mask, c)
}
