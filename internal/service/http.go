package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"distmsm/internal/gpusim"
)

// This file is the service's HTTP face: a small JSON API over Submit
// and SubmitBatch. Requests stay tiny — a circuit name and a witness
// seed — because the witness is generated server-side by the registered
// generator; clients never ship multi-megabyte witnesses over the wire.
//
// Wire schema (v1)
//
//	POST /v1/prove
//	  request   {"circuit": "<name>", "seed": <int64>, "timeout_ms": <int64, optional>}
//	  response  200 {"job_id": <uint64>, "proof": "<hex>"}
//	            400 malformed request   404 unknown circuit
//	            429 admission rejected (Retry-After header, seconds)
//	            503 shutting down       504 job deadline blown
//	            499 client closed request
//
//	POST /v1/batch
//	  request   {"jobs": [<prove request>, ...]}   (1..maxBatchJobs)
//	  response  200 {"jobs": [{"job_id": <uint64>, "proof": "<hex>"}
//	                          | {"job_id": <uint64>, "error": "<msg>"}, ...]}
//	            in request order. Admission is all-or-nothing: the batch
//	            as a whole gets the 400/404/429/503 treatment above, so a
//	            client never unwinds a half-accepted batch; per-job
//	            failures after admission surface as "error" entries.
//
//	GET /v1/healthz   per-GPU breaker states. Degrades honestly: 503 only
//	                  when EVERY GPU is quarantined (the node cannot
//	                  prove); some-but-not-all quarantined stays 200 with
//	                  "degraded": true — capacity is reduced, not gone.
//	                  A cluster coordinator's node breaker keys off the
//	                  503, an autoscaler can key off "degraded".
//	GET /v1/stats     counters snapshot (base-cache hit/miss/eviction,
//	                  quota rejects, shed counts) plus "job_seconds"
//	                  p50/p99/p999 when a metrics registry is configured
//	GET /v1/metrics   Prometheus text exposition (when Config.Metrics set)
//
//	POST /v1/cluster/dispatch   coordinator-dispatched proof job (see
//	                            cluster.go for the worker-node surface)
//	POST /v1/msm                coordinator-dispatched MSM shard: derive
//	                            the base range from (curve, point_seed),
//	                            evaluate the explicit scalars, return the
//	                            sum. The worker cannot tell a real
//	                            instance from the coordinator's secret
//	                            challenge instance (see cluster.go and
//	                            internal/outsource).
//
// The unversioned paths (/prove, /healthz, /stats, /metrics) are legacy
// aliases of the v1 handlers, kept for existing clients; new clients
// should use /v1/. There is no unversioned /batch — the endpoint was
// born versioned.

// maxJobTimeout caps client-requested deadlines so one request cannot
// pin a worker for an hour.
const maxJobTimeout = 10 * time.Minute

// maxCircuitName bounds the circuit-name length accepted on the wire.
const maxCircuitName = 64

// maxBatchJobs bounds the per-request batch size; larger workloads
// split into multiple batches (which the queue coalesces anyway).
const maxBatchJobs = 64

// jobRequestWire is the POST /v1/prove body (and one /v1/batch entry).
type jobRequestWire struct {
	Circuit   string `json:"circuit"`
	Seed      int64  `json:"seed"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// batchRequestWire is the POST /v1/batch body.
type batchRequestWire struct {
	Jobs []jobRequestWire `json:"jobs"`
}

// ParseJobRequest decodes and validates a wire-format job request. It
// is deliberately strict — unknown fields, oversized names,
// non-printable names and out-of-range timeouts are all rejected with
// errors wrapping ErrBadRequest — and it never panics on any input
// (FuzzJobRequest holds it to that).
func ParseJobRequest(body []byte) (Request, error) {
	var w jobRequestWire
	if err := json.Unmarshal(body, &w); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return validateJobWire(w)
}

func validateJobWire(w jobRequestWire) (Request, error) {
	if w.Circuit == "" {
		return Request{}, fmt.Errorf("%w: missing circuit name", ErrBadRequest)
	}
	if len(w.Circuit) > maxCircuitName {
		return Request{}, fmt.Errorf("%w: circuit name longer than %d bytes", ErrBadRequest, maxCircuitName)
	}
	for _, r := range w.Circuit {
		if r < 0x21 || r > 0x7E {
			return Request{}, fmt.Errorf("%w: circuit name contains non-printable or space character %q", ErrBadRequest, r)
		}
	}
	if w.TimeoutMS < 0 {
		return Request{}, fmt.Errorf("%w: negative timeout_ms", ErrBadRequest)
	}
	timeout := time.Duration(w.TimeoutMS) * time.Millisecond
	if timeout > maxJobTimeout {
		return Request{}, fmt.Errorf("%w: timeout_ms above the %v cap", ErrBadRequest, maxJobTimeout)
	}
	return Request{Circuit: w.Circuit, Seed: w.Seed, Timeout: timeout}, nil
}

// ParseBatchRequest decodes and validates a wire-format batch request:
// every entry is held to the same rules as ParseJobRequest, the batch
// must be non-empty and at most maxBatchJobs entries. Never panics on
// any input (FuzzBatchRequest holds it to that).
func ParseBatchRequest(body []byte) ([]Request, error) {
	var w batchRequestWire
	if err := json.Unmarshal(body, &w); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if len(w.Jobs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if len(w.Jobs) > maxBatchJobs {
		return nil, fmt.Errorf("%w: batch of %d jobs above the %d cap", ErrBadRequest, len(w.Jobs), maxBatchJobs)
	}
	reqs := make([]Request, len(w.Jobs))
	for i, jw := range w.Jobs {
		req, err := validateJobWire(jw)
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		reqs[i] = req
	}
	return reqs, nil
}

// Handler returns the service's HTTP API (see the wire-schema block at
// the top of this file): the versioned /v1/ surface plus unversioned
// legacy aliases for the endpoints that predate versioning.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/prove", s.handleProve)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/cluster/dispatch", s.handleClusterDispatch)
	mux.HandleFunc("/v1/msm", s.handleMSM)
	// Legacy aliases, same handlers.
	mux.HandleFunc("/prove", s.handleProve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	if s.metrics != nil {
		mux.Handle("/v1/metrics", s.metrics.reg.Handler())
		mux.Handle("/metrics", s.metrics.reg.Handler())
	}
	return mux
}

// readBody reads at most 64 KiB of request body — more than any valid
// request; the cap keeps a hostile client from ballooning the server.
func readBody(r *http.Request) []byte {
	body := make([]byte, 0, 256)
	buf := make([]byte, 256)
	for len(body) < 1<<16 {
		n, err := r.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return body
}

// writeSubmitError maps a Submit/SubmitBatch error onto the wire.
func writeSubmitError(w http.ResponseWriter, err error) {
	var full *QueueFullError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(full.RetryAfter.Seconds())+1))
		http.Error(w, full.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrUnknownCircuit):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrShuttingDown):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	reqs, err := ParseBatchRequest(readBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	jobs, err := s.SubmitBatch(reqs)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	out := make([]map[string]any, len(jobs))
	for i, job := range jobs {
		proof, err := job.Wait(r.Context())
		if err != nil {
			// The client vanished: stop every job of the batch, not just
			// this one — nobody is waiting for the rest either.
			if r.Context().Err() != nil {
				for _, j := range jobs {
					j.Cancel()
				}
				http.Error(w, err.Error(), 499)
				return
			}
			out[i] = map[string]any{"job_id": job.ID, "error": err.Error()}
			continue
		}
		out[i] = map[string]any{
			"job_id": job.ID,
			"proof":  hex.EncodeToString(s.eng.MarshalProof(proof)),
		}
	}
	writeJSON(w, map[string]any{"jobs": out})
}

func (s *Service) handleProve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := ParseJobRequest(readBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	proof, err := job.Wait(r.Context())
	if err != nil {
		job.Cancel() // client went away or job failed: either way, stop it
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			// 499 is nginx's "client closed request"; net/http has no name
			// for it but it is the conventional code.
			code = 499
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, map[string]any{
		"job_id": job.ID,
		"proof":  hex.EncodeToString(s.eng.MarshalProof(proof)),
	})
}

// handleHealthz degrades honestly: a node with SOME quarantined GPUs
// still proves (the planner routes around them), so it answers 200 with
// "degraded": true; only a node where EVERY GPU is open — nothing left
// to plan onto without the emergency re-admission — answers 503, with
// the per-GPU breaker detail either way. Returning 503 on any single
// quarantined GPU (the old behaviour) made one sick device read as a
// dead node to load balancers and to the cluster coordinator.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.Health()
	quarantined := 0
	gpus := make([]map[string]any, len(snap))
	for i, h := range snap {
		if h.State == gpusim.BreakerOpen {
			quarantined++
		}
		gpus[i] = map[string]any{
			"gpu":    h.GPU,
			"state":  h.State.String(),
			"streak": h.ConsecutiveFaults,
			"trips":  h.Trips,
			"shards": h.Shards,
			"faults": h.Faults,
		}
	}
	down := len(snap) > 0 && quarantined == len(snap)
	status := "ok"
	switch {
	case down:
		status = "down"
		w.WriteHeader(http.StatusServiceUnavailable)
	case quarantined > 0:
		status = "degraded"
	}
	writeJSON(w, map[string]any{
		"status":      status,
		"degraded":    quarantined > 0,
		"quarantined": quarantined,
		"gpus":        gpus,
	})
}

// statsWire is the GET /v1/stats body: the counters snapshot plus
// latency quantiles interpolated from the distmsm_job_seconds histogram
// (present only when a metrics registry is configured and at least one
// job has finished — NaN has no JSON encoding).
type statsWire struct {
	Stats
	JobSeconds *quantilesWire `json:"job_seconds,omitempty"`
}

type quantilesWire struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	out := statsWire{Stats: s.Stats()}
	if s.metrics != nil && s.metrics.jobSeconds.Count() > 0 {
		h := s.metrics.jobSeconds
		out.JobSeconds = &quantilesWire{
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
