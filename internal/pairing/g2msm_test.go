package pairing

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func TestG2AddJacMatchesAddMixed(t *testing.T) {
	e := engine(t)
	g2 := e.G2
	p := g2.ScalarMul(&g2.Gen, big.NewInt(5))
	q := g2.ScalarMul(&g2.Gen, big.NewInt(9))

	sum := g2.FromAffine(&p)
	qj := g2.FromAffine(&q)
	// Put q on a non-trivial Z to exercise the general formulas.
	g2.Double(&qj)
	g2.AddJac(&qj, &qj)
	half := g2.ScalarMul(&q, big.NewInt(4)) // qj is now 4q
	if aff := g2.ToAffine(&qj); !g2.Equal(&aff, &half) {
		t.Fatal("AddJac doubling path wrong")
	}
	g2.AddJac(&sum, &qj)
	want := g2.ScalarMul(&g2.Gen, big.NewInt(5+4*9))
	if aff := g2.ToAffine(&sum); !g2.Equal(&aff, &want) {
		t.Fatal("AddJac general path wrong")
	}

	// Identity edges: O + P, P + O, P + (−P).
	inf := g2.FromAffine(&G2Affine{Inf: true})
	g2.AddJac(&inf, &sum)
	if aff, saff := g2.ToAffine(&inf), g2.ToAffine(&sum); !g2.Equal(&aff, &saff) {
		t.Fatal("O + P != P")
	}
	pj := g2.FromAffine(&p)
	g2.AddJac(&pj, &G2Jacobian{X: e.T.E2One(), Y: e.T.E2One(), Z: e.T.E2Zero()})
	if aff := g2.ToAffine(&pj); !g2.Equal(&aff, &p) {
		t.Fatal("P + O != P")
	}
	neg := g2.Neg(&p)
	nj := g2.FromAffine(&neg)
	g2.AddJac(&pj, &nj)
	if aff := g2.ToAffine(&pj); !aff.Inf {
		t.Fatal("P + (−P) != O")
	}
}

func TestG2PrecomputedMSMMatchesWindowed(t *testing.T) {
	e := engine(t)
	g2 := e.G2
	rnd := rand.New(rand.NewSource(11))
	const n = 7
	points := make([]G2Affine, n)
	scalars := make([]*big.Int, n)
	for i := range points {
		points[i] = g2.ScalarMul(&g2.Gen, big.NewInt(int64(3*i+2)))
		scalars[i] = new(big.Int).Rand(rnd, e.Fr.Modulus)
	}
	// Edge scalars: zero, one, r−1.
	scalars[0] = big.NewInt(0)
	scalars[1] = big.NewInt(1)
	scalars[2] = new(big.Int).Sub(e.Fr.Modulus, big.NewInt(1))
	points[3] = G2Affine{Inf: true}

	pre := g2.Precompute(points, 0, e.Fr.Modulus.BitLen())
	if pre.N() != n || pre.MemoryBytes() <= 0 {
		t.Fatalf("accessors: N=%d mem=%d", pre.N(), pre.MemoryBytes())
	}
	got, err := pre.MSMContext(context.Background(), scalars)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g2.MSMContext(context.Background(), points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(&got, &want) {
		t.Fatal("precomputed G2 MSM disagrees with windowed MSM")
	}

	// Different window size, same answer.
	pre6 := g2.Precompute(points, 6, e.Fr.Modulus.BitLen())
	got6, err := pre6.MSMContext(context.Background(), scalars)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(&got6, &want) {
		t.Fatal("s=6 precomputed G2 MSM disagrees")
	}
}

// TestG2MSMContextCancel: both G2 MSM forms observe a dead context —
// the windowed MSM between windows/scalars, the precomputed MSM inside
// its scatter loop — and the deprecated ctx-less wrappers still return
// the same points as the context forms on a live context.
func TestG2MSMContextCancel(t *testing.T) {
	e := engine(t)
	g2 := e.G2
	rnd := rand.New(rand.NewSource(23))
	const n = 80
	points := make([]G2Affine, n)
	scalars := make([]*big.Int, n)
	for i := range points {
		points[i] = g2.ScalarMul(&g2.Gen, big.NewInt(int64(2*i+1)))
		scalars[i] = new(big.Int).Rand(rnd, e.Fr.Modulus)
	}
	pre := g2.Precompute(points, 0, e.Fr.Modulus.BitLen())

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g2.MSMContext(dead, points, scalars); !errors.Is(err, context.Canceled) {
		t.Fatalf("windowed MSM: want context.Canceled, got %v", err)
	}
	if _, err := pre.MSMContext(dead, scalars); !errors.Is(err, context.Canceled) {
		t.Fatalf("precomputed MSM: want context.Canceled, got %v", err)
	}

	want, err := g2.MSMContext(context.Background(), points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.MSM(points, scalars); !g2.Equal(&got, &want) { //ctxlint:allow — deprecated wrapper parity
		t.Fatal("deprecated G2.MSM wrapper disagrees with MSMContext")
	}
	if got := pre.MSM(scalars); !g2.Equal(&got, &want) { //ctxlint:allow — deprecated wrapper parity
		t.Fatal("deprecated G2Precomputed.MSM wrapper disagrees with MSMContext")
	}
}
