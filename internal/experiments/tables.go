package experiments

import (
	"fmt"

	"distmsm/internal/baselines"
	"distmsm/internal/core"
	"distmsm/internal/gpusim"
	"distmsm/internal/workloads"
)

// Table1 reports the scalar and point bit widths of the supported curves.
func Table1() (string, error) {
	cs, err := mustCurves()
	if err != nil {
		return "", err
	}
	t := newTable("Table 1: number of bits for the supported elliptic curves", 12, 12, 12)
	t.row("EC", "k_i (bits)", "P_i (bits)")
	for _, c := range cs {
		t.row(c.Name, fmt.Sprint(c.ScalarBits), fmt.Sprint(c.Fp.Bits()))
	}
	return t.String(), nil
}

// Table2 reports the baseline inventory.
func Table2() (string, error) {
	t := newTable("Table 2: baseline GPU implementations used for evaluation", 4, 14, 40)
	t.row("#", "Baseline", "Supported Elliptic Curves")
	for _, b := range baselines.All() {
		t.row(fmt.Sprint(b.ID), b.Name, fmt.Sprint(b.Curves))
	}
	return t.String(), nil
}

// Table3Config selects the Table 3 grid.
type Table3Config struct {
	Sizes []int // log2 of N
	GPUs  []int
}

// DefaultTable3Config is the paper's full grid.
func DefaultTable3Config() Table3Config {
	return Table3Config{Sizes: []int{22, 24, 26, 28}, GPUs: []int{1, 8, 16, 32}}
}

// Table3Cell is one (curve, size, gpus) measurement.
type Table3Cell struct {
	Curve      string
	LogN, GPUs int
	BGSeconds  float64
	BGID       int
	DistMSM    float64
}

// Speedup returns BG / DistMSM.
func (c Table3Cell) Speedup() float64 { return c.BGSeconds / c.DistMSM }

// Table3Cells computes the full grid of modeled times.
func Table3Cells(cfg Table3Config) ([]Table3Cell, error) {
	cs, err := mustCurves()
	if err != nil {
		return nil, err
	}
	dev := gpusim.A100()
	var out []Table3Cell
	for _, c := range cs {
		for _, logN := range cfg.Sizes {
			n := 1 << uint(logN)
			for _, g := range cfg.GPUs {
				bg, bb, err := baselines.BestGPU(c, dev, g, n)
				if err != nil {
					return nil, err
				}
				cl, err := gpusim.NewCluster(dev, g)
				if err != nil {
					return nil, err
				}
				res, err := core.Analytic(c, cl, n, core.Options{})
				if err != nil {
					return nil, err
				}
				out = append(out, Table3Cell{
					Curve: c.Name, LogN: logN, GPUs: g,
					BGSeconds: bg, BGID: bb.ID, DistMSM: res.Cost.Total(),
				})
			}
		}
	}
	return out, nil
}

// Table3 renders the execution-time grid (milliseconds, modeled).
func Table3(cfg Table3Config) (string, error) {
	cells, err := Table3Cells(cfg)
	if err != nil {
		return "", err
	}
	t := newTable("Table 3: modeled execution time (ms) of DistMSM vs the best baseline (BG, superscript = Table 2 id)",
		11, 6, 6, 14, 14, 9)
	t.row("Curve", "logN", "GPUs", "BG", "DistMSM", "Speedup")
	var sum, cnt float64
	for _, c := range cells {
		t.row(c.Curve, fmt.Sprint(c.LogN), fmt.Sprint(c.GPUs),
			fmt.Sprintf("%s^%d", ms(c.BGSeconds), c.BGID),
			ms(c.DistMSM), fmt.Sprintf("%.1fx", c.Speedup()))
		if c.GPUs > 1 {
			sum += c.Speedup()
			cnt++
		}
	}
	t.line(fmt.Sprintf("average multi-GPU speedup: %.2fx (paper: 6.39x)", sum/cnt))
	return t.String(), nil
}

// Table4Row is one end-to-end workload measurement.
type Table4Row struct {
	Workload                    workloads.Workload
	LibsnarkSec, DistMSMSec     float64
	LibsnarkStage, DistMSMStage workloads.Breakdown
}

// Table4Rows computes the end-to-end grid.
func Table4Rows() ([]Table4Row, error) {
	var out []Table4Row
	for _, w := range workloads.All() {
		cpu := workloads.LibsnarkProver(w.Constraints)
		gpu, err := workloads.DistMSMProver(w.Constraints, 8)
		if err != nil {
			return nil, err
		}
		out = append(out, Table4Row{
			Workload: w, LibsnarkSec: cpu.Total(), DistMSMSec: gpu.Total(),
			LibsnarkStage: cpu, DistMSMStage: gpu,
		})
	}
	return out, nil
}

// Table4 renders the end-to-end proof-generation comparison (seconds).
func Table4() (string, error) {
	rows, err := Table4Rows()
	if err != nil {
		return "", err
	}
	t := newTable("Table 4: modeled end-to-end proof generation (s), BN254, MSM on 8 GPUs",
		14, 12, 12, 12, 10, 22)
	t.row("Application", "Size", "libsnark", "DistMSM", "Speedup", "(paper: libsnark/dist)")
	for _, r := range rows {
		t.row(r.Workload.Name, fmt.Sprint(r.Workload.Constraints),
			fmt.Sprintf("%.1f", r.LibsnarkSec), fmt.Sprintf("%.1f", r.DistMSMSec),
			fmt.Sprintf("%.1fx", r.LibsnarkSec/r.DistMSMSec),
			fmt.Sprintf("(%.1f / %.1f)", r.Workload.PaperLibsnarkSec, r.Workload.PaperDistMSMSec))
	}
	t.line("CPU stage split (modeled): MSM 78.2% / NTT 17.9% / others 3.9%")
	return t.String(), nil
}
