// Package baselines models the six GPU MSM implementations the paper
// compares against (Table 2) plus the libsnark CPU prover of Table 4.
// Each baseline is a Pippenger configuration on the same simulated
// hardware as DistMSM — differing in algorithm structure (window policy,
// scatter strategy, kernel sophistication, bucket-reduce placement and
// multi-GPU strategy) plus one per-implementation maturity factor
// calibrated against the paper's single-A100 numbers. The *scaling*
// behaviour is therefore produced by the structural choices, not fitted.
package baselines

import (
	"fmt"

	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
	"distmsm/internal/msm"
)

// Baseline is one comparator implementation.
type Baseline struct {
	// ID is the Table 2 identifier (1–6), used as the superscript in
	// Table 3 reports.
	ID   int
	Name string
	// Curves lists supported elliptic curves (Table 2).
	Curves []string

	// Opts is the algorithm structure on the shared simulator. All
	// baselines keep the single-GPU design the paper describes: naive
	// scatter, bucket-reduce on the GPU.
	Opts core.Options
	// WindowPolicy returns the (single-GPU-tuned) window size for N.
	WindowPolicy func(n int) int
	// SpeedFactor scales modeled time for implementation maturity
	// (< 1 = better engineered than the modeled configuration).
	SpeedFactor float64
	// CurveFactors holds per-curve extra factors (e.g. cuZK's sparse
	// matrices blow up on 753-bit points).
	CurveFactors map[string]float64
	// ScalesWDim marks implementations with genuine multi-GPU subtask
	// distribution (cuZK); the rest are "augmented by parallelizing
	// along the N-dim" as in the paper's methodology.
	ScalesWDim bool
	// AMDFactor adjusts time on AMD parts (Bellperson's OpenCL stack is
	// relatively more efficient there than HIP, §5.2); 0 means 1.
	AMDFactor float64
}

func singleGPUWindow(n int) int { return msm.HeuristicWindowSize(n) }

// All returns the Table 2 baselines.
func All() []*Baseline {
	return []*Baseline{
		{
			ID: 1, Name: "Bellperson", Curves: []string{"BLS12-381"},
			Opts: core.Options{
				Variant: kernel.VariantBaseline, VariantSet: true,
				Unsigned: true, ForceNaiveScatter: true, ReduceOnGPU: true,
			},
			WindowPolicy: singleGPUWindow, SpeedFactor: 8.0, AMDFactor: 0.55,
		},
		{
			ID: 2, Name: "cuZK", Curves: []string{"BLS12-377", "BLS12-381", "MNT4753"},
			Opts: core.Options{
				Variant: kernel.VariantPACC, VariantSet: true,
				ForceNaiveScatter: true, ReduceOnGPU: true,
			},
			WindowPolicy: singleGPUWindow, SpeedFactor: 1.55, ScalesWDim: true,
			CurveFactors: map[string]float64{"MNT4753": 8.5},
		},
		{
			ID: 3, Name: "Icicle", Curves: []string{"BN254", "BLS12-377", "BLS12-381"},
			Opts: core.Options{
				Variant: kernel.VariantPACC, VariantSet: true,
				Unsigned: true, ForceNaiveScatter: true, ReduceOnGPU: true,
			},
			WindowPolicy: singleGPUWindow, SpeedFactor: 2.2,
		},
		{
			ID: 4, Name: "Mina", Curves: []string{"MNT4753"},
			Opts: core.Options{
				Variant: kernel.VariantBaseline, VariantSet: true,
				Unsigned: true, ForceNaiveScatter: true, ReduceOnGPU: true,
			},
			WindowPolicy: singleGPUWindow, SpeedFactor: 3.2,
		},
		{
			ID: 5, Name: "Sppark", Curves: []string{"BN254", "BLS12-377", "BLS12-381"},
			Opts: core.Options{
				Variant: kernel.VariantOptimalOrder, VariantSet: true,
				ForceNaiveScatter: true, ReduceOnGPU: true,
			},
			WindowPolicy: singleGPUWindow, SpeedFactor: 1.35,
		},
		{
			ID: 6, Name: "Yrrid", Curves: []string{"BLS12-377"},
			// The ZPrize winner: precomputation, signed digits and
			// hand-written assembly make it the fastest single-GPU
			// BLS12-377 implementation — faster than DistMSM there —
			// but its single-GPU design scales worst (§5.1).
			Opts: core.Options{
				Variant: kernel.VariantSpill, VariantSet: true,
				ForceNaiveScatter: true, ReduceOnGPU: true,
			},
			WindowPolicy: singleGPUWindow, SpeedFactor: 0.45,
		},
	}
}

// ByName returns the named baseline.
func ByName(name string) (*Baseline, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown baseline %q", name)
}

// Supports reports whether the baseline implements the named curve.
func (b *Baseline) Supports(curveName string) bool {
	for _, c := range b.Curves {
		if c == curveName {
			return true
		}
	}
	return false
}

// Estimate models the baseline's execution time (seconds) for an N-point
// MSM on nGPU devices.
func (b *Baseline) Estimate(c *curve.Curve, dev gpusim.Device, nGPU, n int) (float64, error) {
	if !b.Supports(c.Name) {
		return 0, fmt.Errorf("baselines: %s does not support %s", b.Name, c.Name)
	}
	cl, err := gpusim.NewCluster(dev, nGPU)
	if err != nil {
		return 0, err
	}
	opts := b.Opts
	opts.WindowSize = b.WindowPolicy(n)
	// Multi-GPU adaptation: cuZK distributes whole windows (W-dim);
	// everything else was augmented with an N-dim split (§5.1), each GPU
	// running the single-GPU code — tuned for its slice — on N/N_gpu
	// points.
	if nGPU > 1 && !b.ScalesWDim {
		opts.SplitNDim = true
		opts.WindowSize = b.WindowPolicy(n / nGPU)
	}
	res, err := core.Analytic(c, cl, n, opts)
	if err != nil {
		return 0, err
	}
	t := res.Cost.Total() * b.SpeedFactor
	if f, ok := b.CurveFactors[c.Name]; ok {
		t *= f
	}
	if dev.TensorInt8TOPS == 0 && b.AMDFactor != 0 {
		t *= b.AMDFactor
	}
	return t, nil
}

// BestGPU returns the fastest baseline (the paper's "BG") for the curve
// and configuration, with its modeled time in seconds.
func BestGPU(c *curve.Curve, dev gpusim.Device, nGPU, n int) (float64, *Baseline, error) {
	var best *Baseline
	bestT := 0.0
	for _, b := range All() {
		if !b.Supports(c.Name) {
			continue
		}
		t, err := b.Estimate(c, dev, nGPU, n)
		if err != nil {
			return 0, nil, err
		}
		if best == nil || t < bestT {
			best, bestT = b, t
		}
	}
	if best == nil {
		return 0, nil, fmt.Errorf("baselines: no baseline supports %s", c.Name)
	}
	return bestT, best, nil
}
