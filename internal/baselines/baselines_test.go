package baselines

import (
	"testing"

	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
)

func mustCurve(t testing.TB, name string) *curve.Curve {
	t.Helper()
	c, err := curve.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func distMSMTime(t testing.TB, c *curve.Curve, nGPU, n int) float64 {
	t.Helper()
	cl, err := gpusim.NewCluster(gpusim.A100(), nGPU)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analytic(c, cl, n, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Cost.Total()
}

// Table 2: the baseline inventory with curve support.
func TestTable2Inventory(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("want 6 baselines, got %d", len(all))
	}
	support := map[string][]string{
		"Bellperson": {"BLS12-381"},
		"cuZK":       {"BLS12-377", "BLS12-381", "MNT4753"},
		"Icicle":     {"BN254", "BLS12-377", "BLS12-381"},
		"Mina":       {"MNT4753"},
		"Sppark":     {"BN254", "BLS12-377", "BLS12-381"},
		"Yrrid":      {"BLS12-377"},
	}
	for i, b := range all {
		if b.ID != i+1 {
			t.Errorf("%s: ID %d, want %d", b.Name, b.ID, i+1)
		}
		want := support[b.Name]
		if len(want) != len(b.Curves) {
			t.Errorf("%s: curve list %v, want %v", b.Name, b.Curves, want)
		}
		for _, cn := range want {
			if !b.Supports(cn) {
				t.Errorf("%s should support %s", b.Name, cn)
			}
		}
		if b.Supports("nonexistent") {
			t.Errorf("%s claims to support a bogus curve", b.Name)
		}
	}
	if _, err := ByName("cuZK"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected unknown-baseline error")
	}
}

func TestEstimateRejectsUnsupportedCurve(t *testing.T) {
	y, _ := ByName("Yrrid")
	if _, err := y.Estimate(mustCurve(t, "BN254"), gpusim.A100(), 1, 1<<20); err == nil {
		t.Fatal("Yrrid must reject BN254")
	}
}

// Table 3 headline: DistMSM beats the best baseline on BN254, BLS12-381
// and MNT4753 at every GPU count and size.
func TestDistMSMBeatsBestGPU(t *testing.T) {
	dev := gpusim.A100()
	for _, cn := range []string{"BN254", "BLS12-381", "MNT4753"} {
		c := mustCurve(t, cn)
		for _, g := range []int{1, 8, 16, 32} {
			for _, n := range []int{1 << 22, 1 << 26} {
				bg, _, err := BestGPU(c, dev, g, n)
				if err != nil {
					t.Fatal(err)
				}
				d := distMSMTime(t, c, g, n)
				if d >= bg {
					t.Errorf("%s g=%d n=%d: DistMSM %.3g >= BG %.3g", cn, g, n, d, bg)
				}
			}
		}
	}
}

// §5.1: DistMSM "lags behind Yrrid for BLS12-377 when using only one
// GPU"; with more GPUs the order flips.
func TestYrridCrossover(t *testing.T) {
	c := mustCurve(t, "BLS12-377")
	dev := gpusim.A100()
	n := 1 << 26
	bg1, best1, err := BestGPU(c, dev, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if best1.Name != "Yrrid" {
		t.Errorf("1-GPU BLS12-377 best baseline = %s, want Yrrid", best1.Name)
	}
	if d := distMSMTime(t, c, 1, n); d <= bg1 {
		t.Errorf("DistMSM (%.3g) should lag Yrrid (%.3g) on one GPU", d, bg1)
	}
	bg32, _, err := BestGPU(c, dev, 32, n)
	if err != nil {
		t.Fatal(err)
	}
	if d := distMSMTime(t, c, 32, n); d >= bg32 {
		t.Errorf("DistMSM (%.3g) should beat BG (%.3g) at 32 GPUs", d, bg32)
	}
}

// The BG identifiers of Table 3: Sppark leads BN254; Mina or cuZK lead
// MNT4753 (the only implementations that support it).
func TestBestGPUIdentities(t *testing.T) {
	dev := gpusim.A100()
	_, b, err := BestGPU(mustCurve(t, "BN254"), dev, 1, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "Sppark" {
		t.Errorf("BN254 BG = %s, want Sppark", b.Name)
	}
	_, b, err = BestGPU(mustCurve(t, "MNT4753"), dev, 1, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "Mina" && b.Name != "cuZK" {
		t.Errorf("MNT4753 BG = %s, want Mina or cuZK", b.Name)
	}
}

// §5.1: the MNT4753 speedups are the largest (the paper reports 10–20×,
// driven by the PADD kernel's register-pressure work).
func TestMNTSpeedupLargest(t *testing.T) {
	dev := gpusim.A100()
	n := 1 << 24
	speedup := func(cn string, g int) float64 {
		c := mustCurve(t, cn)
		bg, _, err := BestGPU(c, dev, g, n)
		if err != nil {
			t.Fatal(err)
		}
		return bg / distMSMTime(t, c, g, n)
	}
	for _, g := range []int{1, 8} {
		mnt := speedup("MNT4753", g)
		bn := speedup("BN254", g)
		if mnt <= bn {
			t.Errorf("g=%d: MNT speedup %.1fx not larger than BN254's %.1fx", g, mnt, bn)
		}
		if mnt < 8 {
			t.Errorf("g=%d: MNT speedup %.1fx below the paper's 10-20x regime", g, mnt)
		}
	}
}

// Figure 8: baselines scale sub-linearly while DistMSM stays near-linear;
// Yrrid scales the worst among well-tuned implementations relative to its
// single-GPU strength.
func TestScalabilityOrdering(t *testing.T) {
	dev := gpusim.A100()
	n := 1 << 26
	c377 := mustCurve(t, "BLS12-377")

	scale := func(b *Baseline, c *curve.Curve) float64 {
		t1, err := b.Estimate(c, dev, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		t32, err := b.Estimate(c, dev, 32, n)
		if err != nil {
			t.Fatal(err)
		}
		return t1 / t32
	}
	yrrid, _ := ByName("Yrrid")
	yrridScale := scale(yrrid, c377)
	distScale := distMSMTime(t, c377, 1, n) / distMSMTime(t, c377, 32, n)
	if distScale <= yrridScale {
		t.Errorf("DistMSM scaling %.1fx should exceed Yrrid's %.1fx", distScale, yrridScale)
	}
	if distScale < 16 {
		t.Errorf("DistMSM 32-GPU scaling %.1fx not near-linear", distScale)
	}
	if yrridScale >= 32 {
		t.Errorf("Yrrid scaling %.1fx implausibly linear", yrridScale)
	}
}

// Baseline times are monotone in N.
func TestEstimateMonotoneInN(t *testing.T) {
	dev := gpusim.A100()
	for _, b := range All() {
		c := mustCurve(t, b.Curves[0])
		prev := 0.0
		for _, n := range []int{1 << 20, 1 << 22, 1 << 24} {
			tm, err := b.Estimate(c, dev, 8, n)
			if err != nil {
				t.Fatal(err)
			}
			if tm <= prev {
				t.Errorf("%s: time not monotone at n=%d", b.Name, n)
			}
			prev = tm
		}
	}
}
