// Package field implements prime-field arithmetic in Montgomery form over
// internal/bigint. A Field wraps a Montgomery context and provides the
// group/field operations the curve and MSM layers need: addition,
// multiplication, exponentiation, (batch) inversion, square roots via
// p ≡ 3 (mod 4) or Tonelli–Shanks, and 2-adic roots of unity for the NTT.
package field

import (
	"fmt"
	"math/big"
	"math/rand"

	"distmsm/internal/bigint"
)

// Element is a field element in Montgomery form. Its width equals the
// owning Field's limb count; elements from different fields must not mix.
type Element = bigint.Nat

// Field is a prime field GF(p) with elements kept in Montgomery form.
type Field struct {
	Name    string
	Modulus *big.Int

	mont  *bigint.Montgomery
	width int

	// Tonelli–Shanks precomputation: p-1 = q * 2^s with q odd.
	twoAdicity int      // s
	qOdd       *big.Int // q
	nonResidue Element  // a quadratic non-residue, Montgomery form

	pPlus1Div4  *big.Int // (p+1)/4 when p ≡ 3 mod 4, else nil
	pMinus1Div2 *big.Int // (p-1)/2, for Legendre
	pMinus2     *big.Int // p-2, for Fermat inversion
}

// New constructs a field for the given odd prime modulus. Primality is the
// caller's responsibility; an even or tiny modulus is rejected.
func New(name string, modulus *big.Int) (*Field, error) {
	m, err := bigint.NewMontgomery(modulus)
	if err != nil {
		return nil, fmt.Errorf("field %s: %w", name, err)
	}
	f := &Field{
		Name:    name,
		Modulus: new(big.Int).Set(modulus),
		mont:    m,
		width:   m.Width(),
	}
	pm1 := new(big.Int).Sub(modulus, big.NewInt(1))
	f.pMinus1Div2 = new(big.Int).Rsh(pm1, 1)
	f.pMinus2 = new(big.Int).Sub(modulus, big.NewInt(2))

	q := new(big.Int).Set(pm1)
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		f.twoAdicity++
	}
	f.qOdd = q

	if new(big.Int).And(modulus, big.NewInt(3)).Int64() == 3 {
		f.pPlus1Div4 = new(big.Int).Rsh(new(big.Int).Add(modulus, big.NewInt(1)), 2)
	}

	// Find a quadratic non-residue for Tonelli–Shanks and NTT generators.
	for c := int64(2); ; c++ {
		e := f.FromUint64(uint64(c))
		if f.Legendre(e) == -1 {
			f.nonResidue = e
			break
		}
		if c > 1000 {
			return nil, fmt.Errorf("field %s: no small non-residue found (modulus not prime?)", name)
		}
	}
	return f, nil
}

// Width returns the limb count of field elements.
func (f *Field) Width() int { return f.width }

// Backend names the arithmetic backend the underlying Montgomery
// context dispatches to ("unrolled4", "unrolled6", or "generic").
func (f *Field) Backend() string { return f.mont.Backend() }

// Bits returns the bit length of the modulus.
func (f *Field) Bits() int { return f.Modulus.BitLen() }

// TwoAdicity returns s where p-1 = q*2^s with q odd.
func (f *Field) TwoAdicity() int { return f.twoAdicity }

// NewElement returns a zero element of the field.
func (f *Field) NewElement() Element { return bigint.New(f.width) }

// Zero returns a fresh zero element.
func (f *Field) Zero() Element { return f.NewElement() }

// One returns a fresh copy of the multiplicative identity.
func (f *Field) One() Element { return f.mont.One.Clone() }

// SetOne sets z to the multiplicative identity without allocating.
func (f *Field) SetOne(z Element) { z.Set(f.mont.One) }

// FromUint64 returns the Montgomery form of v.
func (f *Field) FromUint64(v uint64) Element {
	x := f.NewElement()
	x.SetUint64(v)
	z := f.NewElement()
	f.mont.ToMont(z, x)
	return z
}

// FromBig returns the Montgomery form of v mod p.
func (f *Field) FromBig(v *big.Int) Element {
	red := new(big.Int).Mod(v, f.Modulus)
	x := bigint.FromBig(red, f.width)
	z := f.NewElement()
	f.mont.ToMont(z, x)
	return z
}

// ToBig returns the plain (non-Montgomery) integer value of x.
func (f *Field) ToBig(x Element) *big.Int {
	z := f.NewElement()
	f.mont.FromMont(z, x)
	return z.ToBig()
}

// Rand returns a uniformly random element using rnd.
func (f *Field) Rand(rnd *rand.Rand) Element {
	return f.FromBig(new(big.Int).Rand(rnd, f.Modulus))
}

// Add sets z = x + y.
func (f *Field) Add(z, x, y Element) { f.mont.AddMod(z, x, y) }

// Sub sets z = x - y.
func (f *Field) Sub(z, x, y Element) { f.mont.SubMod(z, x, y) }

// Neg sets z = -x.
func (f *Field) Neg(z, x Element) { f.mont.NegMod(z, x) }

// Mul sets z = x * y through the width-dispatched Montgomery backend
// (unrolled fixed-limb kernels on 4- and 6-limb fields, generic CIOS
// otherwise). z may alias x or y.
func (f *Field) Mul(z, x, y Element) { f.mont.Mul(z, x, y) }

// Square sets z = x² with the dedicated Montgomery squaring (triangle +
// diagonal partial products, unrolled on 4/6-limb fields). z may alias x.
func (f *Field) Square(z, x Element) { f.mont.Square(z, x) }

// Double sets z = 2x.
func (f *Field) Double(z, x Element) { f.mont.AddMod(z, x, x) }

// IsZero reports whether x == 0.
func (f *Field) IsZero(x Element) bool { return x.IsZero() }

// Equal reports whether x == y.
func (f *Field) Equal(x, y Element) bool { return x.Equal(y) }

// Set copies y into z.
func (f *Field) Set(z, y Element) { z.Set(y) }

// Exp sets z = x^e for a non-negative big exponent, by square-and-multiply.
func (f *Field) Exp(z, x Element, e *big.Int) {
	f.expInto(z, x, e, f.NewElement(), f.NewElement(), f.NewElement())
}

// expInto is the allocation-free square-and-multiply core: acc, base and
// tmp are caller-provided scratch elements (distinct from one another;
// z may alias x). big.Int.Bit and BitLen do not allocate.
func (f *Field) expInto(z, x Element, e *big.Int, acc, base, tmp Element) {
	if e.Sign() < 0 {
		panic("field: negative exponent")
	}
	f.SetOne(acc)
	base.Set(x)
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			f.Mul(tmp, acc, base)
			acc, tmp = tmp, acc
		}
		f.Square(tmp, base)
		base, tmp = tmp, base
	}
	z.Set(acc)
}

// Inv sets z = x^-1 via Fermat's little theorem. Inverting zero yields zero.
func (f *Field) Inv(z, x Element) { f.Exp(z, x, f.pMinus2) }

// BatchInvert inverts every element of xs in place using Montgomery's
// trick: one inversion plus 3(n-1) multiplications. Zero entries stay zero.
func (f *Field) BatchInvert(xs []Element) {
	f.NewBatchInverter(len(xs)).Invert(xs)
}

// BatchInverter is the reusable-scratch form of BatchInvert: the prefix
// products, the Fermat-inversion registers and their limb backing are
// allocated once and reused across calls, so a warmed inverter performs
// zero allocations per Invert. Not safe for concurrent use; give each
// worker its own.
type BatchInverter struct {
	f      *Field
	prefix []Element // capacity slices into arena
	arena  []uint64
	// registers: running product, its inverse, swap scratch, and the
	// three expInto registers.
	acc, inv, tmp, ea, eb, ec Element
}

// NewBatchInverter returns an inverter pre-sized for batches of up to
// `capacity` elements (it grows transparently if exceeded).
func (f *Field) NewBatchInverter(capacity int) *BatchInverter {
	bi := &BatchInverter{
		f:   f,
		acc: f.NewElement(), inv: f.NewElement(), tmp: f.NewElement(),
		ea: f.NewElement(), eb: f.NewElement(), ec: f.NewElement(),
	}
	bi.grow(capacity)
	return bi
}

func (bi *BatchInverter) grow(n int) {
	if n <= len(bi.prefix) {
		return
	}
	w := bi.f.width
	bi.arena = make([]uint64, n*w)
	bi.prefix = make([]Element, n)
	for i := range bi.prefix {
		bi.prefix[i] = Element(bi.arena[i*w : (i+1)*w])
	}
}

// Invert inverts every element of xs in place; zero entries stay zero.
func (bi *BatchInverter) Invert(xs []Element) {
	n := len(xs)
	if n == 0 {
		return
	}
	bi.grow(n)
	f := bi.f
	f.SetOne(bi.acc)
	for i, x := range xs {
		bi.prefix[i].Set(bi.acc)
		if !x.IsZero() {
			f.Mul(bi.tmp, bi.acc, x)
			bi.acc.Set(bi.tmp)
		}
	}
	f.expInto(bi.inv, bi.acc, f.pMinus2, bi.ea, bi.eb, bi.ec)
	for i := n - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			continue
		}
		f.Mul(bi.tmp, bi.inv, bi.prefix[i])
		f.Mul(bi.prefix[i], bi.inv, xs[i]) // reuse prefix[i] as scratch
		bi.inv.Set(bi.prefix[i])
		xs[i].Set(bi.tmp)
	}
}

// Legendre returns 1 if x is a nonzero square, -1 if a non-square, 0 if zero.
func (f *Field) Legendre(x Element) int {
	if x.IsZero() {
		return 0
	}
	z := f.NewElement()
	f.Exp(z, x, f.pMinus1Div2)
	if z.Equal(f.mont.One) {
		return 1
	}
	return -1
}

// Sqrt sets z to a square root of x and returns true, or returns false if
// x is a non-residue. Uses the p ≡ 3 (mod 4) shortcut when available and
// Tonelli–Shanks otherwise.
func (f *Field) Sqrt(z, x Element) bool {
	if x.IsZero() {
		z.SetZero()
		return true
	}
	if f.pPlus1Div4 != nil {
		cand := f.NewElement()
		f.Exp(cand, x, f.pPlus1Div4)
		check := f.NewElement()
		f.Square(check, cand)
		if !check.Equal(x) {
			return false
		}
		z.Set(cand)
		return true
	}
	return f.tonelliShanks(z, x)
}

func (f *Field) tonelliShanks(z, x Element) bool {
	if f.Legendre(x) != 1 {
		return false
	}
	// c = nonResidue^q has order 2^s.
	c := f.NewElement()
	f.Exp(c, f.nonResidue, f.qOdd)
	// t = x^q, r = x^((q+1)/2)
	t := f.NewElement()
	f.Exp(t, x, f.qOdd)
	r := f.NewElement()
	f.Exp(r, x, new(big.Int).Rsh(new(big.Int).Add(f.qOdd, big.NewInt(1)), 1))

	m := f.twoAdicity
	tmp := f.NewElement()
	for !t.Equal(f.mont.One) {
		// Find least i with t^(2^i) == 1.
		i := 0
		probe := t.Clone()
		for !probe.Equal(f.mont.One) {
			f.Square(tmp, probe)
			probe.Set(tmp)
			i++
			if i >= m {
				return false
			}
		}
		// b = c^(2^(m-i-1))
		b := c.Clone()
		for j := 0; j < m-i-1; j++ {
			f.Square(tmp, b)
			b.Set(tmp)
		}
		f.Mul(tmp, r, b)
		r.Set(tmp)
		f.Square(tmp, b)
		c.Set(tmp)
		f.Mul(tmp, t, c)
		t.Set(tmp)
		m = i
	}
	z.Set(r)
	return true
}

// RootOfUnity returns a primitive 2^k-th root of unity, or an error if the
// field's 2-adicity is insufficient.
func (f *Field) RootOfUnity(k int) (Element, error) {
	if k < 0 || k > f.twoAdicity {
		return nil, fmt.Errorf("field %s: no 2^%d-th root of unity (2-adicity %d)", f.Name, k, f.twoAdicity)
	}
	// nonResidue^q has order exactly 2^s; square down to order 2^k.
	w := f.NewElement()
	f.Exp(w, f.nonResidue, f.qOdd)
	tmp := f.NewElement()
	for i := 0; i < f.twoAdicity-k; i++ {
		f.Square(tmp, w)
		w.Set(tmp)
	}
	return w, nil
}

// Montgomery exposes the underlying Montgomery context (used by the
// tensor-core multiplier, which needs the raw modulus digits and n'0).
func (f *Field) Montgomery() *bigint.Montgomery { return f.mont }
