// Package core implements DistMSM, the paper's primary contribution: an
// adaptation of Pippenger's algorithm for distributed multi-GPU systems.
// It contains the per-thread workload model of §3.1 (Figure 3), the
// three-level hierarchical bucket scatter of §3.2.1 (Algorithm 3), the
// multi-GPU bucket-sum distribution of §3.2.2, the CPU offload of
// bucket-reduce of §3.2.3, and the scheduler that assembles them. The GPU
// hardware itself is modeled by internal/gpusim (see DESIGN.md); the
// algorithms here run functionally — producing bit-exact MSM results that
// the tests verify against the serial reference — while the simulator
// prices the work.
package core

import (
	"math"
)

// WorkloadParams are the inputs of the §3.1 per-thread workload formulas.
type WorkloadParams struct {
	N          int // number of points
	ScalarBits int // λ
	S          int // window size s
	NGPU       int // GPUs in the system
	NT         int // concurrent threads per GPU (the paper uses 2^16)
}

// NumWindows returns ⌈λ/s⌉.
func (p WorkloadParams) NumWindows() int { return (p.ScalarBits + p.S - 1) / p.S }

// PerThreadWork evaluates the paper's per-thread workload estimate (in EC
// arithmetic operations) for a multi-GPU Pippenger execution:
//
//	⌈N_win/N_gpu⌉·⌈(N+2^s)/N_T⌉ + ⌈2^s/N_T⌉·2s + min(⌈2^s/N_T⌉+log2(N_T), s)
//
// and, when there are more GPUs than windows so a window's buckets are
// split across ⌊N_gpu/N_win⌋ GPUs:
//
//	(N + 2^s·2s)/(⌊N_gpu/N_win⌋·N_T) + log2(2^s/⌊N_gpu/N_win⌋)
func PerThreadWork(p WorkloadParams) float64 {
	nWin := p.NumWindows()
	buckets := math.Exp2(float64(p.S))
	nt := float64(p.NT)
	if p.NGPU <= nWin {
		winPerGPU := math.Ceil(float64(nWin) / float64(p.NGPU))
		sum := winPerGPU * math.Ceil((float64(p.N)+buckets)/nt)
		bucketChunk := math.Ceil(buckets / nt)
		reduce := bucketChunk * 2 * float64(p.S)
		tail := math.Min(bucketChunk+math.Log2(nt), float64(p.S))
		return sum + reduce + tail
	}
	share := float64(p.NGPU / nWin) // ⌊N_gpu/N_win⌋ GPUs per window
	work := (float64(p.N) + buckets*2*float64(p.S)) / (share * nt)
	return work + math.Log2(buckets/share)
}

// OptimalWindow returns the window size in [minS, maxS] minimising the
// §3.1 per-thread workload. This is the platform-dependent choice Figure 3
// illustrates: large windows win on one GPU, small windows on many.
func OptimalWindow(n, scalarBits, nGPU, nt int, minS, maxS int) int {
	if minS < 1 {
		minS = 1
	}
	if maxS > 26 {
		maxS = 26
	}
	best, bestW := minS, math.Inf(1)
	for s := minS; s <= maxS; s++ {
		w := PerThreadWork(WorkloadParams{N: n, ScalarBits: scalarBits, S: s, NGPU: nGPU, NT: nt})
		if w < bestW {
			best, bestW = s, w
		}
	}
	return best
}
