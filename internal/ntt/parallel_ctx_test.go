package ntt

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"distmsm/internal/field"
)

// TestParallelContextFormsMatchSerialAndCancel: the ctx-aware parallel
// transforms (the quotient pipeline's NTT backend) are bit-identical to
// the serial *Context forms at every worker count — including n=256,
// which exercises the small-n serial fallback — and a dead context
// surfaces from between the butterfly passes of every variant.
func TestParallelContextFormsMatchSerialAndCancel(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(55))
	for _, n := range []int{256, 2048} {
		d, err := NewDomain(f, n)
		if err != nil {
			t.Fatal(err)
		}
		orig := randVec(f, rnd, n)
		variants := []struct {
			name   string
			serial func(ctx context.Context, a []field.Element) error
			par    func(ctx context.Context, a []field.Element, workers int) error
		}{
			{"forward", d.ForwardContext, d.ParallelForwardContext},
			{"inverse", d.InverseContext, d.ParallelInverseContext},
			{"coset-forward", d.CosetForwardContext, d.ParallelCosetForwardContext},
			{"coset-inverse", d.CosetInverseContext, d.ParallelCosetInverseContext},
		}
		for _, v := range variants {
			want := cloneVec(orig)
			if err := v.serial(context.Background(), want); err != nil {
				t.Fatalf("n=%d %s: serial reference: %v", n, v.name, err)
			}
			for _, workers := range []int{0, 1, 3, 8} {
				got := cloneVec(orig)
				if err := v.par(context.Background(), got, workers); err != nil {
					t.Fatalf("n=%d %s workers=%d: %v", n, v.name, workers, err)
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("n=%d %s workers=%d: diverged from serial at %d", n, v.name, workers, i)
					}
				}
			}

			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if err := v.par(cancelled, cloneVec(orig), 4); !errors.Is(err, context.Canceled) {
				t.Fatalf("n=%d %s: want context.Canceled, got %v", n, v.name, err)
			}
			expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel2()
			if err := v.par(expired, cloneVec(orig), 4); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("n=%d %s: want context.DeadlineExceeded, got %v", n, v.name, err)
			}
		}

		// Coset round trip through the parallel forms recovers the input.
		rt := cloneVec(orig)
		if err := d.ParallelCosetForwardContext(context.Background(), rt, 4); err != nil {
			t.Fatal(err)
		}
		if err := d.ParallelCosetInverseContext(context.Background(), rt, 4); err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if !rt[i].Equal(orig[i]) {
				t.Fatalf("n=%d: parallel coset round trip failed at %d", n, i)
			}
		}
	}
}
